//! **Experiment E2 — prepared-query amortization**: re-executing one
//! query through a warm [`PreparedQuery`] handle (structure analysis,
//! statistics, and plan all resolved once at prepare time) vs calling
//! `Engine::serve` per request, which re-resolves the cached structure
//! (fingerprint + isomorphism translation), re-collects query-scoped
//! statistics, and re-derives the plan on every call.
//!
//! The fixture is the plan-cache bench's rank-3 hypercycle on 16
//! vertices: planning-side work is substantial relative to execution on
//! a small database, which is exactly the repeated-query serving shape
//! the prepared-statement API exists for. The headline numbers are
//! measured outside the criterion sampling loop and gated at ≥ 2×.

use cqd2::cq::generate::{canonical_query, planted_database};
use cqd2::engine::{Engine, EngineConfig, Request, Workload};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Instant;

fn bench(c: &mut Criterion) {
    println!("\n=== E2: prepared queries — repeated-query batch ===");
    let q = canonical_query(&cqd2::hypergraph::generators::hypercycle(8, 3));
    let db = planted_database(&q, 6, 10, 17);
    let batch = 200usize;

    let engine = Engine::new(EngineConfig::default());
    let req = Request {
        query: &q,
        db: &db,
        workload: Workload::Boolean,
    };
    // Warm the plan cache so the serve side pays translation, never
    // fresh decomposition — the comparison isolates per-call overhead.
    let expected = engine.serve(&req).answer.as_bool().expect("boolean");
    assert!(expected, "planted instance must be satisfiable");

    // Correctness gate: the prepared handle answers exactly like serve,
    // with zero planning in its run provenance.
    let session = engine.session(&db);
    let prepared = session.prepare(&q).expect("planning cannot fail");
    let resp = prepared.run(Workload::Boolean);
    assert_eq!(resp.answer.as_bool(), Some(expected));
    assert_eq!(
        resp.provenance.planning,
        std::time::Duration::ZERO,
        "prepared runs must do no planning"
    );

    // Headline numbers outside the sampling loop: one full pass each way.
    let t = Instant::now();
    for _ in 0..batch {
        black_box(engine.serve(&req));
    }
    let unprepared = t.elapsed();
    let t = Instant::now();
    for _ in 0..batch {
        black_box(prepared.run(Workload::Boolean));
    }
    let prepared_time = t.elapsed();
    let speedup = unprepared.as_secs_f64() / prepared_time.as_secs_f64().max(1e-9);
    println!(
        "  unprepared ({batch} × serve):        {unprepared:?}\n  prepared   ({batch} × PreparedQuery::run): {prepared_time:?}\n  speedup: {speedup:.1}×"
    );
    assert!(
        speedup >= 2.0,
        "prepared re-execution must be at least 2× over per-call serve \
         (got {speedup:.2}×: {prepared_time:?} vs {unprepared:?})"
    );
    println!("GATE engine_prepared/warm_handle ratio={speedup:.3} floor=2.0 cmp=ge status=PASS");

    let mut g = c.benchmark_group("engine_prepared");
    g.bench_function("unprepared/serve_per_call", |b| {
        b.iter(|| black_box(engine.serve(&req)));
    });
    g.bench_function("prepared/run_warm_handle", |b| {
        b.iter(|| black_box(prepared.run(Workload::Boolean)));
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
