//! **Experiment E1 — plan-cache amortization**: serving a 100-query
//! repeated-structure batch through the engine (structure planned once,
//! 99 cache hits) vs 100 independent `solve_bcq`-style evaluations that
//! re-derive the decomposition from scratch every time.
//!
//! The fixture structure is a rank-3 hypercycle on 16 vertices: small
//! enough for the exact ghw DP, large enough that re-running that DP per
//! query dominates evaluation — precisely the workload shape the plan
//! cache exists for.

use cqd2::cq::generate::{canonical_query, planted_database};
use cqd2::cq::{Atom, ConjunctiveQuery, Database, Term, Var};
use cqd2::engine::{Engine, EngineConfig, Request, Workload};
use cqd2::hypergraph::generators::hypercycle;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Instant;

/// An isomorphic copy of `q`: variables rotated, relations tagged.
fn renamed_copy(q: &ConjunctiveQuery, shift: usize, tag: &str) -> ConjunctiveQuery {
    let n = q.num_vars();
    let mut var_names = vec![String::new(); n];
    for (i, name) in q.var_names.iter().enumerate() {
        var_names[(i + shift) % n] = format!("{name}_{tag}");
    }
    let atoms = q
        .atoms
        .iter()
        .map(|a| Atom {
            relation: format!("{}_{tag}", a.relation),
            terms: a
                .terms
                .iter()
                .map(|t| match t {
                    Term::Var(v) => Term::Var(Var(((v.idx() + shift) % n) as u32)),
                    Term::Const(c) => Term::Const(*c),
                })
                .collect(),
        })
        .collect();
    ConjunctiveQuery { atoms, var_names }
}

fn renamed_db(q: &ConjunctiveQuery, db: &Database, tag: &str) -> Database {
    let mut out = Database::new();
    for atom in &q.atoms {
        if let Some(rel) = db.relation(&atom.relation) {
            out.insert_all(&format!("{}_{tag}", atom.relation), &rel.tuples);
        }
    }
    out
}

fn bench(c: &mut Criterion) {
    println!("\n=== E1: plan cache — 100-query repeated-structure batch ===");
    let base = canonical_query(&hypercycle(8, 3));
    let base_db = planted_database(&base, 6, 10, 17);
    let batch_size = 100usize;
    let queries: Vec<ConjunctiveQuery> = (0..batch_size)
        .map(|i| renamed_copy(&base, i % base.num_vars(), &format!("q{i}")))
        .collect();
    let dbs: Vec<Database> = (0..batch_size)
        .map(|i| renamed_db(&base, &base_db, &format!("q{i}")))
        .collect();

    // Correctness gate: engine answers match the independent evaluator
    // on every request, and the whole batch is planted-satisfiable.
    let engine = Engine::new(EngineConfig::default());
    let requests: Vec<Request<'_>> = queries
        .iter()
        .zip(&dbs)
        .map(|(query, db)| Request {
            query,
            db,
            workload: Workload::Boolean,
        })
        .collect();
    let responses = engine.execute_batch(&requests);
    for (req, resp) in requests.iter().zip(&responses) {
        assert_eq!(
            resp.answer.as_bool().unwrap(),
            cqd2::cq::eval::bcq_auto(req.query, req.db),
            "engine answer diverged"
        );
        assert_eq!(resp.answer.as_bool(), Some(true), "planted solution lost");
    }
    let stats = engine.cache_stats();
    println!(
        "  cache after warm batch: {} hits / {} misses ({} structure)",
        stats.hits, stats.misses, stats.entries
    );
    assert_eq!(
        stats.misses, 1,
        "one structure class must plan exactly once"
    );

    // Headline numbers outside the sampling loop: one full pass each way.
    let t = Instant::now();
    for (q, db) in queries.iter().zip(&dbs) {
        black_box(cqd2::cq::eval::bcq_auto(q, db));
    }
    let cold = t.elapsed();
    let warm_engine = Engine::new(EngineConfig::default());
    warm_engine.execute_batch(&requests); // prime the cache
    let t = Instant::now();
    black_box(warm_engine.execute_batch(&requests));
    let warm = t.elapsed();
    println!(
        "  cold (100 × decompose+eval): {cold:?}\n  warm (engine, cached plans): {warm:?}\n  speedup: {:.1}×",
        cold.as_secs_f64() / warm.as_secs_f64().max(1e-9)
    );
    assert!(
        warm < cold,
        "warm cache batch ({warm:?}) must beat cold per-query decomposition ({cold:?})"
    );

    let mut g = c.benchmark_group("engine_plan_cache");
    g.bench_function("cold/100x_solve_bcq_fresh_decomposition", |b| {
        b.iter(|| {
            for (q, db) in queries.iter().zip(&dbs) {
                black_box(cqd2::cq::eval::bcq_auto(black_box(q), black_box(db)));
            }
        })
    });
    g.bench_function("warm/100x_engine_batch_cached", |b| {
        let engine = Engine::new(EngineConfig::default());
        engine.execute_batch(&requests); // prime
        b.iter(|| black_box(engine.execute_batch(black_box(&requests))))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = cqd2_bench::quick_criterion();
    targets = bench
}
criterion_main!(benches);
