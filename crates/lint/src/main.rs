//! CLI for `cqd2-lint`.
//!
//! ```text
//! cargo run -p cqd2-lint --              # lint the workspace, human output
//! cargo run -p cqd2-lint -- --check      # same, but quiet on success (CI)
//! cargo run -p cqd2-lint -- --json       # machine-readable findings
//! cargo run -p cqd2-lint -- --explain panic-in-hot-path
//! cargo run -p cqd2-lint -- --root /path/to/workspace
//! ```
//!
//! Exit status: 0 when clean, 1 when any finding is reported, 2 on
//! usage or I/O errors.

use std::path::PathBuf;
use std::process::ExitCode;

use cqd2_lint::{findings_to_json, lint_by_name, scan_workspace, LINTS};

fn usage() -> &'static str {
    "usage: cqd2-lint [--root <dir>] [--json] [--check] [--explain <lint>] [--list]\n\
     \n\
     --root <dir>     workspace root to lint (default: current directory)\n\
     --json           emit findings as a JSON array\n\
     --check          CI mode: print nothing on success, findings on failure\n\
     --explain <lint> print the rationale for one lint and exit\n\
     --list           list all lints with one-line summaries"
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut root = PathBuf::from(".");
    let mut json = false;
    let mut check = false;
    let mut i = 0usize;
    while i < args.len() {
        match args[i].as_str() {
            "--root" => {
                i += 1;
                let Some(dir) = args.get(i) else {
                    eprintln!("--root requires a directory\n{}", usage());
                    return ExitCode::from(2);
                };
                root = PathBuf::from(dir);
            }
            "--json" => json = true,
            "--check" => check = true,
            "--list" => {
                for l in LINTS {
                    println!("{:<20} {}", l.name, l.summary);
                }
                return ExitCode::SUCCESS;
            }
            "--explain" => {
                i += 1;
                let Some(name) = args.get(i) else {
                    eprintln!("--explain requires a lint name\n{}", usage());
                    return ExitCode::from(2);
                };
                let Some(lint) = lint_by_name(name) else {
                    eprintln!("unknown lint `{name}`; known lints:");
                    for l in LINTS {
                        eprintln!("  {}", l.name);
                    }
                    return ExitCode::from(2);
                };
                println!("{}: {}\n\n{}", lint.name, lint.summary, lint.explain);
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}`\n{}", usage());
                return ExitCode::from(2);
            }
        }
        i += 1;
    }

    let findings = match scan_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("cqd2-lint: cannot walk {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if json {
        println!("{}", findings_to_json(&findings));
    } else if findings.is_empty() {
        if !check {
            println!("cqd2-lint: workspace clean");
        }
    } else {
        for f in &findings {
            println!("{}:{}: [{}] {}", f.file, f.line, f.lint, f.message);
        }
        println!(
            "cqd2-lint: {} finding{} ({} lint{}); run with `--explain <lint>` for rationale",
            findings.len(),
            if findings.len() == 1 { "" } else { "s" },
            {
                let mut names: Vec<&str> = findings.iter().map(|f| f.lint).collect();
                names.sort_unstable();
                names.dedup();
                names.len()
            },
            {
                let mut names: Vec<&str> = findings.iter().map(|f| f.lint).collect();
                names.sort_unstable();
                names.dedup();
                if names.len() == 1 {
                    ""
                } else {
                    "s"
                }
            },
        );
    }

    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
