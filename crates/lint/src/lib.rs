//! `cqd2-lint` — workspace-specific static analysis.
//!
//! A dependency-free lint pass over every `.rs` file in the workspace,
//! enforcing the project's correctness conventions:
//!
//! | lint | rule |
//! |------|------|
//! | `panic-in-hot-path` | no `unwrap`/`expect`/`panic!`/`unreachable!` in serve-path code |
//! | `stringly-error` | no `Result<_, String>` in `pub` signatures |
//! | `print-in-lib` | no `println!`/`eprintln!` in library code |
//! | `todo-markers` | no `todo!`/`unimplemented!`/`dbg!` in shipped code |
//! | `unscoped-spawn` | no `std::thread::spawn` outside scoped helpers |
//! | `malformed-allow` | `cqd2-lint:` annotations must parse |
//!
//! Suppress a finding with a mandatory-reason annotation on the same
//! line, or on its own line directly above:
//!
//! ```text
//! // cqd2-lint: allow(panic-in-hot-path, reason = "why this cannot fire")
//! ```
//!
//! Run `cargo run -p cqd2-lint -- --explain <lint>` for the rationale
//! behind each rule.

pub mod lexer;
pub mod rules;

pub use rules::{classify, is_hot_path, lint_by_name, parse_allow, scan_source};
pub use rules::{Allow, FileKind, Finding, Lint, LINTS};

use std::path::{Path, PathBuf};

/// Directories never descended into when walking the workspace.
///
/// - `target/`, `.git/`, `.claude/`: build output and metadata.
/// - `vendor/`: offline stand-ins for external crates — they imitate
///   third-party APIs and are not held to this project's conventions.
/// - `crates/lint/tests/fixtures/`: intentionally-violating inputs for
///   the linter's own tests.
const SKIP_DIRS: &[&str] = &["target", ".git", ".claude", "vendor", "fixtures"];

/// Collect every lintable `.rs` file under `root`, as workspace-relative
/// forward-slash paths, sorted for deterministic output.
pub fn workspace_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    walk(root, root, &mut out)?;
    out.sort();
    Ok(out)
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            walk(root, &path, out)?;
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_path_buf());
            }
        }
    }
    Ok(())
}

/// Lint the whole workspace rooted at `root`. Unreadable files are
/// skipped (non-UTF-8 content has nothing for these rules to match).
pub fn scan_workspace(root: &Path) -> std::io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    for rel in workspace_files(root)? {
        let Ok(src) = std::fs::read_to_string(root.join(&rel)) else {
            continue;
        };
        let rel_str = rel
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        findings.extend(scan_source(&rel_str, &src));
    }
    findings
        .sort_by(|a, b| (a.file.clone(), a.line, a.lint).cmp(&(b.file.clone(), b.line, b.lint)));
    Ok(findings)
}

/// Render findings as JSON (an array of objects), dependency-free.
pub fn findings_to_json(findings: &[Finding]) -> String {
    fn esc(s: &str) -> String {
        let mut out = String::with_capacity(s.len() + 2);
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out
    }
    let mut out = String::from("[\n");
    for (i, f) in findings.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"file\": \"{}\", \"line\": {}, \"lint\": \"{}\", \"message\": \"{}\"}}{}\n",
            esc(&f.file),
            f.line,
            f.lint,
            esc(&f.message),
            if i + 1 < findings.len() { "," } else { "" }
        ));
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes() {
        let f = vec![Finding {
            file: "a.rs".to_string(),
            line: 3,
            lint: "todo-markers",
            message: "has \"quotes\" and\nnewline".to_string(),
        }];
        let j = findings_to_json(&f);
        assert!(j.contains("\\\"quotes\\\""));
        assert!(j.contains("\\n"));
        assert!(j.starts_with('[') && j.ends_with(']'));
    }

    #[test]
    fn empty_json_is_valid() {
        assert_eq!(findings_to_json(&[]), "[\n]");
    }
}
