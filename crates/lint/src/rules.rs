//! The lint rules and the per-file analysis driver.
//!
//! Every rule works on the *masked* source from [`crate::lexer`]: string
//! and comment contents are blanked, so a pattern match really is code.
//! Findings are line-attributed and suppressible with an annotation
//! comment (see [`parse_allow`]) carrying a mandatory reason.

use crate::lexer::{mask, Comment, Masked};

/// A single lint violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path (forward slashes).
    pub file: String,
    /// 1-indexed line.
    pub line: usize,
    /// Lint id, e.g. `panic-in-hot-path`.
    pub lint: &'static str,
    /// Human-readable description with remediation.
    pub message: String,
}

/// Registry entry: one lint rule.
pub struct Lint {
    pub name: &'static str,
    /// One-line summary (shown in listings).
    pub summary: &'static str,
    /// Long-form `--explain` text.
    pub explain: &'static str,
}

/// All lints, in severity-then-name order.
pub const LINTS: &[Lint] = &[
    Lint {
        name: "panic-in-hot-path",
        summary: "no unwrap/expect/panic!/unreachable! in serve-path code",
        explain: "The serve path (crates/engine/src/{engine,catalog,session,store}.rs, \
crates/engine/src/server/, crates/cq/src/{eval,flat,probe}.rs) answers live queries: \
a panic there kills a worker thread, poisons shared mutexes, and turns one bad request \
into a denial of service for every connection. Return a typed error (EngineError, \
EvalError, ...) instead, and recover mutex poisoning through \
cqd2_cq::sync::{lock_or_poison, read_or_poison, write_or_poison, wait_or_poison} — \
a poisoned lock guards data whose invariants the engine re-validates per request, so \
inheriting the inner value is always safe here. For the rare provably-unreachable case, \
keep the expect and annotate the line (or the line above) with \
`// cqd2-lint: allow(panic-in-hot-path, reason = \"why it cannot fire\")`.",
    },
    Lint {
        name: "stringly-error",
        summary: "no Result<_, String> in pub signatures",
        explain: "A `pub fn ... -> Result<_, String>` gives callers nothing to match on, \
nothing to chain as a source, and invites format!-driven error construction deep in \
library code. Every public fallible surface must return a typed error implementing \
std::error::Error (see EngineError, DilutionError, JigsawError, VerifyError for the \
house style: an enum with a Display impl, a source() chain, and From conversions).",
    },
    Lint {
        name: "print-in-lib",
        summary: "no println!/eprintln! in library code",
        explain: "Library crates must not write to stdout/stderr: the engine is embedded \
(tests, benchmarks, the TCP server), and stray prints corrupt framed protocol output and \
make benchmarks noisy. Use the typed error channel or the metrics/trace facilities. \
Binaries (src/bin/, main.rs), tests, examples, and benches may print freely.",
    },
    Lint {
        name: "todo-markers",
        summary: "no todo!/unimplemented!/dbg! anywhere in shipped code",
        explain: "todo!() and unimplemented!() are panics wearing a disguise, and dbg!() \
is a debugging aid that prints to stderr — none of them belong in committed non-test \
code. Finish the implementation, return a typed error, or delete the dead branch.",
    },
    Lint {
        name: "unscoped-spawn",
        summary: "no std::thread::spawn outside scoped helpers and tests",
        explain: "Detached threads outlive the data they borrow from (forcing 'static \
bounds and Arc churn) and are invisible to graceful shutdown. Use std::thread::scope — \
the engine's batch executor, the server's worker pool, and the parallel bag kernels all \
run scoped — so threads provably join before their data goes away. Daemon-lifetime \
threads in binaries are the one legitimate exception; annotate them with \
`// cqd2-lint: allow(unscoped-spawn, reason = \"...\")`.",
    },
    Lint {
        name: "malformed-allow",
        summary: "cqd2-lint annotation comments must parse",
        explain: "A comment containing `cqd2-lint:` that does not parse as \
`// cqd2-lint: allow(<lint>, reason = \"...\")` (with a known lint name and a non-empty \
reason) suppresses nothing — silently. That near-miss is reported as a violation so a \
typo never turns into an unsuppressed-but-believed-suppressed lint.",
    },
];

/// Look up a lint by name.
pub fn lint_by_name(name: &str) -> Option<&'static Lint> {
    LINTS.iter().find(|l| l.name == name)
}

/// How a file participates in linting, derived from its path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library source: every rule applies.
    Lib,
    /// Binary source (`src/bin/`, `src/main.rs`, `build.rs`): printing
    /// is fine; panics are a process-level choice; spawn/todo rules
    /// still apply.
    Bin,
    /// Tests, examples, benches, fixtures: only `malformed-allow`
    /// applies (a broken annotation is confusing anywhere).
    TestLike,
}

/// Classify a workspace-relative path (forward slashes).
pub fn classify(rel_path: &str) -> FileKind {
    let p = rel_path;
    let test_dirs = ["tests/", "examples/", "benches/"];
    if test_dirs
        .iter()
        .any(|d| p.starts_with(d) || p.contains(&format!("/{d}")))
    {
        return FileKind::TestLike;
    }
    if p.ends_with("build.rs") || p.contains("/src/bin/") || p.ends_with("src/main.rs") {
        return FileKind::Bin;
    }
    FileKind::Lib
}

/// Is this file part of the serve path, where panics are banned?
///
/// The engine crate is hot *by directory*: everything under
/// `crates/engine/src/` (including `server/` and new modules like
/// `delta.rs`) is serve-path unless explicitly excluded below — so a
/// new engine module is born covered instead of silently cold. The
/// exclusions are planning-/parse-time code that runs before a plan
/// is cached, never per request.
pub fn is_hot_path(rel_path: &str) -> bool {
    /// Engine modules that are *not* on the per-request serve path.
    const COLD: &[&str] = &[
        // Structure planning: runs once per structure class, result
        // cached; panics surface at prepare time, not per query.
        "crates/engine/src/planner.rs",
        // Strict plan verification: opt-in audit at prepare time.
        "crates/engine/src/verify.rs",
        // Text parsing: load/admin-frame boundary, line-attributed
        // errors by design.
        "crates/engine/src/textio.rs",
    ];
    /// Kernel files in other crates that the serve path executes.
    const HOT: &[&str] = &[
        "crates/cq/src/eval.rs",
        "crates/cq/src/flat.rs",
        "crates/cq/src/probe.rs",
        "crates/cq/src/delta.rs",
    ];
    if rel_path.starts_with("crates/engine/src/") {
        return !COLD.contains(&rel_path);
    }
    HOT.contains(&rel_path)
}

/// A parsed suppression annotation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allow {
    pub lint: String,
    pub reason: String,
}

/// Parse a line comment as a `cqd2-lint: allow(...)` annotation.
///
/// - `None`: the comment does not mention `cqd2-lint:` (or is a doc
///   comment, which is documentation *about* the syntax, never an
///   annotation).
/// - `Some(Ok(allow))`: a well-formed annotation.
/// - `Some(Err(msg))`: mentions the marker but does not parse.
pub fn parse_allow(comment: &str) -> Option<Result<Allow, String>> {
    if comment.starts_with("///") || comment.starts_with("//!") {
        return None;
    }
    let marker = "cqd2-lint:";
    let at = comment.find(marker)?;
    let rest = comment[at + marker.len()..].trim_start();
    let Some(rest) = rest.strip_prefix("allow(") else {
        return Some(Err("expected `allow(` after `cqd2-lint:`".to_string()));
    };
    let Some(comma) = rest.find(',') else {
        return Some(Err(
            "expected `allow(<lint>, reason = \"...\")` — missing `, reason = ...`".to_string(),
        ));
    };
    let lint_name = rest[..comma].trim();
    if lint_by_name(lint_name).is_none() {
        return Some(Err(format!("unknown lint `{lint_name}`")));
    }
    let rest = rest[comma + 1..].trim_start();
    let Some(rest) = rest.strip_prefix("reason") else {
        return Some(Err("expected `reason = \"...\"`".to_string()));
    };
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix('=') else {
        return Some(Err("expected `=` after `reason`".to_string()));
    };
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix('"') else {
        return Some(Err("reason must be a quoted string".to_string()));
    };
    // The reason string: scan to the closing quote (no escapes needed
    // in reasons; a `\"` would end the scan early, which is acceptable
    // for an annotation grammar).
    let Some(endq) = rest.find('"') else {
        return Some(Err("unterminated reason string".to_string()));
    };
    let reason = &rest[..endq];
    if reason.trim().is_empty() {
        return Some(Err("reason must not be empty".to_string()));
    }
    let tail = rest[endq + 1..].trim_start();
    if !tail.starts_with(')') {
        return Some(Err("expected `)` closing the allow(...)".to_string()));
    }
    Some(Ok(Allow {
        lint: lint_name.to_string(),
        reason: reason.to_string(),
    }))
}

/// Mark every line covered by a `#[cfg(test)]` item (attribute line
/// through the matching close brace or terminating semicolon).
fn test_span_lines(masked: &str) -> Vec<bool> {
    let chars: Vec<char> = masked.chars().collect();
    let total_lines = masked.matches('\n').count() + 1;
    let mut is_test = vec![false; total_lines + 1]; // 1-indexed
    let mut line_of = Vec::with_capacity(chars.len() + 1);
    {
        let mut line = 1usize;
        for &c in &chars {
            line_of.push(line);
            if c == '\n' {
                line += 1;
            }
        }
        line_of.push(line);
    }
    let mut i = 0usize;
    while i < chars.len() {
        if chars[i] == '#' && chars.get(i + 1) == Some(&'[') {
            // Read the balanced attribute.
            let attr_start = i;
            let mut depth = 0usize;
            let mut j = i + 1;
            while j < chars.len() {
                match chars[j] {
                    '[' => depth += 1,
                    ']' => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            let attr: String = chars[attr_start..=j.min(chars.len() - 1)]
                .iter()
                .filter(|c| !c.is_whitespace())
                .collect();
            if attr.contains("cfg(test)") || attr.contains("cfg(all(test") {
                // Span: from the attribute to the end of the next item.
                let mut k = j + 1;
                let mut brace_depth = 0usize;
                let mut entered = false;
                while k < chars.len() {
                    match chars[k] {
                        '{' => {
                            brace_depth += 1;
                            entered = true;
                        }
                        '}' => {
                            brace_depth = brace_depth.saturating_sub(1);
                            if entered && brace_depth == 0 {
                                break;
                            }
                        }
                        ';' if !entered => break,
                        _ => {}
                    }
                    k += 1;
                }
                let (from, to) = (line_of[attr_start], line_of[k.min(chars.len() - 1)]);
                for l in from..=to {
                    if l < is_test.len() {
                        is_test[l] = true;
                    }
                }
                i = k + 1;
                continue;
            }
            i = j + 1;
            continue;
        }
        i += 1;
    }
    is_test
}

/// True when the occurrence of `tok` at `idx` is a real token: for
/// identifier-leading patterns (`panic!(`, `println!(`) the preceding
/// char must not extend an identifier (so `eprintln!` never matches the
/// embedded `println!`). Patterns leading with `.` (method calls) are
/// preceded by a receiver by construction and always match.
fn token_match(text: &str, idx: usize, tok: &str) -> bool {
    if idx == 0 || tok.starts_with('.') {
        return true;
    }
    let prev = text[..idx].chars().next_back().unwrap_or(' ');
    !(prev.is_alphanumeric() || prev == '_')
}

fn find_tokens(line: &str, tok: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0usize;
    while let Some(pos) = line[from..].find(tok) {
        let idx = from + pos;
        if token_match(line, idx, tok) {
            out.push(idx);
        }
        from = idx + tok.len();
    }
    out
}

/// Scan masked full-text for `pub fn` signatures returning
/// `Result<_, String>`. Returns `(line, fn_name)` pairs.
fn stringly_pub_fns(masked: &str) -> Vec<(usize, String)> {
    let chars: Vec<char> = masked.chars().collect();
    let mut line_of = Vec::with_capacity(chars.len() + 1);
    {
        let mut line = 1usize;
        for &c in &chars {
            line_of.push(line);
            if c == '\n' {
                line += 1;
            }
        }
        line_of.push(line);
    }
    let mut out = Vec::new();
    let text: String = chars.iter().collect();
    for idx in find_word(&text, "fn") {
        if !is_pub_fn(&text, idx) {
            continue;
        }
        let Some((name, ret)) = fn_return_type(&chars, idx) else {
            continue;
        };
        if returns_stringly_result(&ret) {
            out.push((line_of[idx], name));
        }
    }
    out
}

/// All indices where the standalone word `w` occurs.
fn find_word(text: &str, w: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0usize;
    while let Some(pos) = text[from..].find(w) {
        let idx = from + pos;
        let before_ok = idx == 0 || {
            let prev = text[..idx].chars().next_back().unwrap_or(' ');
            !(prev.is_alphanumeric() || prev == '_')
        };
        let after = text[idx + w.len()..].chars().next().unwrap_or(' ');
        let after_ok = !(after.is_alphanumeric() || after == '_');
        if before_ok && after_ok {
            out.push(idx);
        }
        from = idx + w.len();
    }
    out
}

/// Does the `fn` at byte index `idx` carry a `pub` (any visibility
/// flavor) among its leading modifiers?
fn is_pub_fn(text: &str, idx: usize) -> bool {
    // Look at up to 64 chars before the `fn` and read trailing tokens.
    let start = idx.saturating_sub(64);
    let before = &text[start..idx];
    let mut toks: Vec<&str> = before.split_whitespace().collect();
    while let Some(&last) = toks.last() {
        match last {
            "const" | "async" | "unsafe" => {
                toks.pop();
            }
            _ => break,
        }
    }
    matches!(toks.last(), Some(&t) if t == "pub" || t.starts_with("pub("))
}

/// Parse past the fn name, generics, and parameter list; return the
/// name and the return-type text (empty when the fn returns unit).
fn fn_return_type(chars: &[char], fn_idx: usize) -> Option<(String, String)> {
    let mut i = fn_idx + 2;
    let n = chars.len();
    while i < n && chars[i].is_whitespace() {
        i += 1;
    }
    let name_start = i;
    while i < n && (chars[i].is_alphanumeric() || chars[i] == '_') {
        i += 1;
    }
    let name: String = chars[name_start..i].iter().collect();
    if name.is_empty() {
        return None;
    }
    while i < n && chars[i].is_whitespace() {
        i += 1;
    }
    // Generics: balance angles, treating `->` inside (e.g. `Fn() -> T`)
    // as not closing.
    if i < n && chars[i] == '<' {
        let mut depth = 1usize;
        i += 1;
        while i < n && depth > 0 {
            match chars[i] {
                '<' => depth += 1,
                '>' if chars[i - 1] != '-' => depth -= 1,
                _ => {}
            }
            i += 1;
        }
        while i < n && chars[i].is_whitespace() {
            i += 1;
        }
    }
    // Parameter list.
    if i >= n || chars[i] != '(' {
        return None;
    }
    let mut depth = 1usize;
    i += 1;
    while i < n && depth > 0 {
        match chars[i] {
            '(' => depth += 1,
            ')' => depth -= 1,
            _ => {}
        }
        i += 1;
    }
    while i < n && chars[i].is_whitespace() {
        i += 1;
    }
    // Return type?
    if i + 1 >= n || chars[i] != '-' || chars[i + 1] != '>' {
        return Some((name, String::new()));
    }
    i += 2;
    let ret_start = i;
    let mut angle = 0usize;
    let mut paren = 0usize;
    while i < n {
        match chars[i] {
            '<' => angle += 1,
            '>' if chars[i - 1] != '-' => angle = angle.saturating_sub(1),
            '(' => paren += 1,
            ')' => paren = paren.saturating_sub(1),
            '{' | ';' if angle == 0 && paren == 0 => break,
            'w' if angle == 0
                && paren == 0
                && chars[i..].starts_with(&['w', 'h', 'e', 'r', 'e'])
                && chars.get(i + 5).is_none_or(|c| c.is_whitespace()) =>
            {
                break
            }
            _ => {}
        }
        i += 1;
    }
    let ret: String = chars[ret_start..i].iter().collect();
    Some((name, ret))
}

/// Is `ret` (a return-type string) `Result<_, String>` at top level?
fn returns_stringly_result(ret: &str) -> bool {
    let t: String = ret.chars().filter(|c| !c.is_whitespace()).collect();
    let body = ["Result<", "std::result::Result<", "core::result::Result<"]
        .iter()
        .find_map(|p| t.strip_prefix(p));
    let Some(body) = body else { return false };
    let Some(body) = body.strip_suffix('>') else {
        return false;
    };
    // Top-level comma split.
    let mut depth = 0usize;
    let chars: Vec<char> = body.chars().collect();
    for (i, &c) in chars.iter().enumerate() {
        match c {
            '<' | '(' | '[' => depth += 1,
            '>' | ')' | ']' => depth = depth.saturating_sub(1),
            ',' if depth == 0 => {
                let err: String = chars[i + 1..].iter().collect();
                let err = err.trim_matches(',').to_string();
                return err == "String" || err.ends_with("::String");
            }
            _ => {}
        }
    }
    false
}

/// Lint one file. `rel_path` is workspace-relative with forward
/// slashes; `src` is the file contents.
pub fn scan_source(rel_path: &str, src: &str) -> Vec<Finding> {
    let kind = classify(rel_path);
    let masked: Masked = mask(src);
    let lines: Vec<&str> = masked.code.lines().collect();
    let is_test = test_span_lines(&masked.code);
    let line_is_test =
        |l: usize| kind == FileKind::TestLike || is_test.get(l).copied().unwrap_or(false);
    let line_has_code = |l: usize| {
        lines
            .get(l - 1)
            .map(|s| !s.trim().is_empty())
            .unwrap_or(false)
    };

    let mut findings: Vec<Finding> = Vec::new();
    // line -> allowed lint names.
    let mut allows: Vec<(usize, Allow)> = Vec::new();
    for Comment { line, text } in &masked.comments {
        match parse_allow(text) {
            None => {}
            Some(Ok(allow)) => {
                // Same line if it has code; otherwise the next code line.
                let mut target = *line;
                if !line_has_code(target) {
                    let mut l = target + 1;
                    while l <= lines.len() && !line_has_code(l) {
                        l += 1;
                    }
                    target = l;
                }
                allows.push((target, allow));
            }
            Some(Err(msg)) => findings.push(Finding {
                file: rel_path.to_string(),
                line: *line,
                lint: "malformed-allow",
                message: format!("annotation does not parse: {msg}"),
            }),
        }
    }
    let allowed = |line: usize, lint: &str| {
        allows
            .iter()
            .any(|(l, a)| *l == line && (a.lint == lint || a.lint == "malformed-allow"))
    };

    struct Pattern {
        lint: &'static str,
        token: &'static str,
        message: &'static str,
    }
    let mut patterns: Vec<Pattern> = Vec::new();
    if kind == FileKind::Lib && is_hot_path(rel_path) {
        for (token, message) in [
            (
                ".unwrap()",
                "`.unwrap()` in serve-path code — return a typed error, or \
use cqd2_cq::sync::lock_or_poison for mutex poisoning",
            ),
            (
                ".expect(",
                "`.expect(...)` in serve-path code — return a typed error, or \
annotate a provably-unreachable case with an allow(..., reason = ...)",
            ),
            (
                "panic!(",
                "`panic!` in serve-path code — return a typed error",
            ),
            (
                "unreachable!(",
                "`unreachable!` in serve-path code — make the invariant a typed error",
            ),
        ] {
            patterns.push(Pattern {
                lint: "panic-in-hot-path",
                token,
                message,
            });
        }
    }
    if kind == FileKind::Lib {
        for token in ["println!(", "eprintln!(", "print!(", "eprint!("] {
            patterns.push(Pattern {
                lint: "print-in-lib",
                token,
                message: "direct stdout/stderr write in library code — use the typed \
error channel or the metrics facilities",
            });
        }
    }
    if kind != FileKind::TestLike {
        for token in ["todo!(", "unimplemented!(", "dbg!("] {
            patterns.push(Pattern {
                lint: "todo-markers",
                token,
                message: "leftover development marker — finish the branch or return a \
typed error",
            });
        }
        patterns.push(Pattern {
            lint: "unscoped-spawn",
            token: "thread::spawn",
            message: "detached thread — use std::thread::scope so the thread provably \
joins, or annotate a daemon-lifetime thread with an allow(..., reason = ...)",
        });
    }

    for (l0, line) in lines.iter().enumerate() {
        let lineno = l0 + 1;
        if line_is_test(lineno) {
            continue;
        }
        for p in &patterns {
            for _ in find_tokens(line, p.token) {
                if allowed(lineno, p.lint) {
                    continue;
                }
                findings.push(Finding {
                    file: rel_path.to_string(),
                    line: lineno,
                    lint: p.lint,
                    message: format!("{} — {}", p.token.trim_end_matches('('), p.message),
                });
            }
        }
    }

    if kind == FileKind::Lib {
        for (lineno, name) in stringly_pub_fns(&masked.code) {
            if line_is_test(lineno) || allowed(lineno, "stringly-error") {
                continue;
            }
            findings.push(Finding {
                file: rel_path.to_string(),
                line: lineno,
                lint: "stringly-error",
                message: format!(
                    "`pub fn {name}` returns Result<_, String> — define a typed error \
enum implementing std::error::Error"
                ),
            });
        }
    }

    findings.sort_by(|a, b| (a.line, a.lint).cmp(&(b.line, b.lint)));
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allow_parses_and_rejects() {
        let ok = parse_allow("// cqd2-lint: allow(panic-in-hot-path, reason = \"seeded above\")");
        assert_eq!(
            ok,
            Some(Ok(Allow {
                lint: "panic-in-hot-path".to_string(),
                reason: "seeded above".to_string(),
            }))
        );
        assert!(matches!(
            parse_allow("// cqd2-lint: allow(no-such-lint, reason = \"x\")"),
            Some(Err(_))
        ));
        assert!(matches!(
            parse_allow("// cqd2-lint: allow(todo-markers)"),
            Some(Err(_))
        ));
        assert_eq!(parse_allow("// plain comment"), None);
        // Doc comments are documentation, never annotations.
        assert_eq!(
            parse_allow("/// // cqd2-lint: allow(todo-markers, reason = \"docs\")"),
            None
        );
        // Reasons may contain parentheses — the quotes delimit.
        let with_parens = parse_allow(
            "// cqd2-lint: allow(panic-in-hot-path, reason = \"order.len() bounds it\")",
        );
        assert!(matches!(with_parens, Some(Ok(_))));
    }

    #[test]
    fn cfg_test_spans_exempt() {
        let src = "pub fn f() {}\n#[cfg(test)]\nmod tests {\n    fn g() { x.unwrap(); }\n}\n";
        let f = scan_source("crates/engine/src/engine.rs", src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn hot_path_panics_flagged_and_suppressed() {
        let src = "fn f(x: Option<u8>) {\n    x.unwrap();\n}\n";
        let f = scan_source("crates/engine/src/engine.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].lint, "panic-in-hot-path");
        assert_eq!(f[0].line, 2);
        // Same file outside the hot path: no finding.
        assert!(scan_source("crates/decomp/src/verify.rs", src).is_empty());
        // Suppressed by an annotation on the preceding line.
        let src_ok = "fn f(x: Option<u8>) {\n    // cqd2-lint: allow(panic-in-hot-path, reason = \"seeded\")\n    x.unwrap();\n}\n";
        assert!(scan_source("crates/engine/src/engine.rs", src_ok).is_empty());
    }

    #[test]
    fn hot_path_is_the_engine_directory_minus_cold_exclusions() {
        // The engine crate is hot by directory: a brand-new module is
        // covered without touching the lint.
        assert!(is_hot_path("crates/engine/src/delta.rs"));
        assert!(is_hot_path("crates/engine/src/some_future_module.rs"));
        assert!(is_hot_path("crates/engine/src/server/mod.rs"));
        // Planning-/parse-time modules are explicitly cold.
        assert!(!is_hot_path("crates/engine/src/planner.rs"));
        assert!(!is_hot_path("crates/engine/src/verify.rs"));
        assert!(!is_hot_path("crates/engine/src/textio.rs"));
        // Kernel files in other crates stay on the explicit list.
        assert!(is_hot_path("crates/cq/src/delta.rs"));
        assert!(is_hot_path("crates/cq/src/eval.rs"));
        assert!(!is_hot_path("crates/cq/src/generate.rs"));
    }

    #[test]
    fn stringly_error_detection() {
        let src = "pub fn f(x: u8) -> Result<Vec<u8>, String> { Err(String::new()) }\n";
        let f = scan_source("crates/decomp/src/x.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].lint, "stringly-error");
        // Typed error: fine. Private stringly fn: fine.
        assert!(scan_source(
            "crates/decomp/src/x.rs",
            "pub fn f() -> Result<u8, MyError> { Ok(0) }\nfn g() -> Result<u8, String> { Ok(0) }\n"
        )
        .is_empty());
        // Multi-line signature with a generic param.
        let multi = "pub fn h<T: Clone>(\n    x: T,\n) -> Result<(T, usize), String> {\n    Ok((x, 0))\n}\n";
        let f = scan_source("crates/decomp/src/x.rs", multi);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn print_and_todo_and_spawn() {
        let src =
            "fn f() {\n    println!(\"x\");\n    todo!();\n    std::thread::spawn(|| {});\n}\n";
        let f = scan_source("crates/cq/src/lib.rs", src);
        let lints: Vec<&str> = f.iter().map(|x| x.lint).collect();
        assert!(lints.contains(&"print-in-lib"), "{f:?}");
        assert!(lints.contains(&"todo-markers"));
        assert!(lints.contains(&"unscoped-spawn"));
        // Bin context: printing fine, spawn/todo still flagged.
        let f = scan_source("crates/core/src/bin/tool.rs", src);
        let lints: Vec<&str> = f.iter().map(|x| x.lint).collect();
        assert!(!lints.contains(&"print-in-lib"));
        assert!(lints.contains(&"todo-markers"));
        assert!(lints.contains(&"unscoped-spawn"));
        // Test context: nothing.
        assert!(scan_source("crates/cq/tests/x.rs", src).is_empty());
        // Scoped spawn is fine.
        assert!(scan_source(
            "crates/cq/src/lib.rs",
            "fn f() { std::thread::scope(|s| { s.spawn(|| {}); }); }\n"
        )
        .is_empty());
    }

    #[test]
    fn strings_and_comments_do_not_trip() {
        let src = "fn f() -> &'static str {\n    // explains .unwrap() usage\n    \"call .expect( or panic!( freely\"\n}\n";
        assert!(scan_source("crates/engine/src/engine.rs", src).is_empty());
    }

    #[test]
    fn malformed_allow_is_a_finding() {
        let src = "fn f() {}\n// cqd2-lint: allow(panic-in-hot-path)\nfn g() {}\n";
        let f = scan_source("crates/cq/src/lib.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].lint, "malformed-allow");
        assert_eq!(f[0].line, 2);
    }
}
