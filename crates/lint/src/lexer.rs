//! A minimal Rust lexer for lint purposes.
//!
//! [`mask`] produces a copy of the source in which comment text and
//! string-literal *contents* are blanked out (newlines preserved, string
//! delimiters kept), so the rule patterns in [`crate::rules`] can match
//! against code without being fooled by text that merely *talks about*
//! `unwrap()` or `panic!`. Line comments are additionally captured
//! verbatim so `// cqd2-lint: allow(...)` annotations can be parsed.
//!
//! This is not a full lexer — it only understands the token classes
//! that can hide code-looking text: line comments, nested block
//! comments, string literals (plain, byte, raw with any `#` count),
//! and char literals (distinguished from lifetimes).

/// One captured line comment: the 1-indexed line it starts on and its
/// full text including the leading `//`.
#[derive(Debug, Clone)]
pub struct Comment {
    pub line: usize,
    pub text: String,
}

/// The result of masking a source file.
#[derive(Debug)]
pub struct Masked {
    /// Source text with comments and string contents blanked.
    pub code: String,
    /// Every line comment, in order of appearance.
    pub comments: Vec<Comment>,
}

impl Masked {
    /// The masked code split into lines (0-indexed; line `n` of the
    /// file is `lines()[n - 1]`).
    pub fn lines(&self) -> Vec<&str> {
        self.code.lines().collect()
    }
}

/// Blank comments and string contents out of `src`. The returned code
/// has the same line structure as the input (every `\n` is preserved),
/// so byte-offset-free, line-based rules stay aligned with the
/// original file.
pub fn mask(src: &str) -> Masked {
    let chars: Vec<char> = src.chars().collect();
    let mut out: Vec<char> = Vec::with_capacity(chars.len());
    let mut comments: Vec<Comment> = Vec::new();
    let mut line = 1usize;
    let mut i = 0usize;

    while i < chars.len() {
        let c = chars[i];
        match c {
            '\n' => {
                line += 1;
                out.push('\n');
                i += 1;
            }
            '/' if chars.get(i + 1) == Some(&'/') => {
                let start = i;
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
                comments.push(Comment {
                    line,
                    text: chars[start..i].iter().collect(),
                });
                out.extend(std::iter::repeat_n(' ', i - start));
            }
            '/' if chars.get(i + 1) == Some(&'*') => {
                let mut depth = 1usize;
                out.push(' ');
                out.push(' ');
                i += 2;
                while i < chars.len() && depth > 0 {
                    if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                        depth += 1;
                        out.push(' ');
                        out.push(' ');
                        i += 2;
                    } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                        depth -= 1;
                        out.push(' ');
                        out.push(' ');
                        i += 2;
                    } else {
                        if chars[i] == '\n' {
                            line += 1;
                            out.push('\n');
                        } else {
                            out.push(' ');
                        }
                        i += 1;
                    }
                }
            }
            '"' => {
                i = blank_plain_string(&chars, i, &mut out, &mut line);
            }
            'r' | 'b' => {
                let prev_is_ident = i > 0 && is_ident_char(chars[i - 1]);
                if !prev_is_ident {
                    if let Some((prefix_len, hashes)) = raw_string_prefix(&chars, i) {
                        // Emit the prefix (including the opening quote).
                        for k in 0..prefix_len {
                            out.push(chars[i + k]);
                        }
                        i += prefix_len;
                        i = blank_raw_string(&chars, i, hashes, &mut out, &mut line);
                        continue;
                    }
                }
                out.push(c);
                i += 1;
            }
            '\'' => {
                if let Some(len) = char_literal_len(&chars, i) {
                    out.push('\'');
                    for &ch in &chars[(i + 1)..(i + len - 1)] {
                        if ch == '\n' {
                            line += 1;
                            out.push('\n');
                        } else {
                            out.push(' ');
                        }
                    }
                    out.push('\'');
                    i += len;
                } else {
                    out.push('\'');
                    i += 1;
                }
            }
            _ => {
                out.push(c);
                i += 1;
            }
        }
    }

    Masked {
        code: out.into_iter().collect(),
        comments,
    }
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Blank a `"..."` string starting at the opening quote; returns the
/// index just past the closing quote.
fn blank_plain_string(
    chars: &[char],
    start: usize,
    out: &mut Vec<char>,
    line: &mut usize,
) -> usize {
    out.push('"');
    let mut i = start + 1;
    while i < chars.len() {
        match chars[i] {
            '\\' => {
                out.push(' ');
                if let Some(&next) = chars.get(i + 1) {
                    if next == '\n' {
                        *line += 1;
                        out.push('\n');
                    } else {
                        out.push(' ');
                    }
                    i += 2;
                } else {
                    i += 1;
                }
            }
            '"' => {
                out.push('"');
                return i + 1;
            }
            '\n' => {
                *line += 1;
                out.push('\n');
                i += 1;
            }
            _ => {
                out.push(' ');
                i += 1;
            }
        }
    }
    i
}

/// Detect `r"`, `r#"`, `br"`, `br##"`, `b"` … at `chars[i]`. Returns
/// `(prefix_len_including_opening_quote, hash_count)`.
fn raw_string_prefix(chars: &[char], i: usize) -> Option<(usize, usize)> {
    let mut j = i;
    if chars.get(j) == Some(&'b') {
        j += 1;
    }
    let raw = chars.get(j) == Some(&'r');
    if raw {
        j += 1;
    }
    let mut hashes = 0usize;
    if raw {
        while chars.get(j) == Some(&'#') {
            hashes += 1;
            j += 1;
        }
    }
    if chars.get(j) == Some(&'"') {
        // `b"` without `r` is an ordinary (escaped) byte string; treat
        // it as raw-with-0-hashes only when `r` was present. For plain
        // `b"` fall through to the normal string path via a 0-hash raw
        // marker *only if raw*, else signal no raw prefix and let the
        // caller emit `b` and hit `"` next iteration.
        if raw {
            return Some((j - i + 1, hashes));
        }
        return None;
    }
    None
}

/// Blank a raw string body starting just past the opening quote until
/// `"` followed by `hashes` `#`s. Returns the index past the closer.
fn blank_raw_string(
    chars: &[char],
    mut i: usize,
    hashes: usize,
    out: &mut Vec<char>,
    line: &mut usize,
) -> usize {
    while i < chars.len() {
        if chars[i] == '"' {
            let mut ok = true;
            for k in 0..hashes {
                if chars.get(i + 1 + k) != Some(&'#') {
                    ok = false;
                    break;
                }
            }
            if ok {
                out.push('"');
                for _ in 0..hashes {
                    out.push('#');
                }
                return i + 1 + hashes;
            }
        }
        if chars[i] == '\n' {
            *line += 1;
            out.push('\n');
        } else {
            out.push(' ');
        }
        i += 1;
    }
    i
}

/// Length (in chars, including both quotes) of a char literal starting
/// at `chars[i] == '\''`, or `None` if this is a lifetime.
fn char_literal_len(chars: &[char], i: usize) -> Option<usize> {
    match chars.get(i + 1) {
        Some('\\') => {
            // Escaped char: scan to the closing quote (covers \u{…}).
            let mut j = i + 2;
            while j < chars.len() && j < i + 14 {
                if chars[j] == '\'' {
                    return Some(j - i + 1);
                }
                j += 1;
            }
            None
        }
        Some(&c) => {
            if chars.get(i + 2) == Some(&'\'') && c != '\'' {
                Some(3)
            } else {
                None // `'a>` or `'static` — a lifetime
            }
        }
        None => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_comments_are_blanked_and_captured() {
        let m = mask("let x = 1; // has .unwrap() in text\nlet y = 2;\n");
        assert!(!m.code.contains("unwrap"));
        assert!(m.code.contains("let y = 2;"));
        assert_eq!(m.comments.len(), 1);
        assert_eq!(m.comments[0].line, 1);
        assert!(m.comments[0].text.contains(".unwrap()"));
    }

    #[test]
    fn nested_block_comments_and_line_structure() {
        let src = "a /* outer /* inner */ still */ b\nc\n";
        let m = mask(src);
        assert!(m.code.contains('a'));
        assert!(m.code.contains('b'));
        assert!(!m.code.contains("inner"));
        assert_eq!(m.code.matches('\n').count(), src.matches('\n').count());
    }

    #[test]
    fn strings_keep_delimiters_but_lose_contents() {
        let m = mask(r#"let s = "calls .expect( here"; s.len();"#);
        assert!(!m.code.contains(".expect("));
        assert!(m.code.contains("\""));
        assert!(m.code.contains("s.len();"));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let src = "let s = r##\"panic!(\"boom\")\"##; done();";
        let m = mask(src);
        assert!(!m.code.contains("panic!"));
        assert!(m.code.contains("done();"));
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let src = "fn f<'a>(x: &'a str) { let q = '\"'; let n = '\\n'; g(q, n); }";
        let m = mask(src);
        // The quote char literal must not open a string.
        assert!(m.code.contains("g(q, n);"));
        assert!(m.code.contains("&'a str"));
    }

    #[test]
    fn escaped_quote_inside_string() {
        let m = mask(r#"let s = "he said \".unwrap()\" loudly"; after();"#);
        assert!(!m.code.contains(".unwrap()"));
        assert!(m.code.contains("after();"));
    }
}
