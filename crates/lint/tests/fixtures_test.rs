//! Fixture-driven integration tests: every lint fires on its seeded
//! fixture, every `allow(...)` annotation suppresses, and the real
//! workspace is clean.
//!
//! Fixtures live in `tests/fixtures/` (excluded from the workspace
//! walk) and are scanned under *pseudo-paths* so each one lands in the
//! file class its lint targets — e.g. the panic fixture pretends to be
//! `crates/engine/src/server/fixture.rs`, squarely in the hot path.

use std::path::Path;

use cqd2_lint::{scan_source, scan_workspace, Finding};

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

fn lines_of(findings: &[Finding], lint: &str) -> Vec<usize> {
    findings
        .iter()
        .filter(|f| f.lint == lint)
        .map(|f| f.line)
        .collect()
}

#[test]
fn panic_in_hot_path_fires_and_allows_suppress() {
    let src = fixture("panic_hot_path.rs");
    let f = scan_source("crates/engine/src/server/fixture.rs", &src);
    // Four violations: unwrap, expect, panic!, unreachable!. The two
    // annotated unwraps and the #[cfg(test)] unwrap must not report.
    let lines = lines_of(&f, "panic-in-hot-path");
    assert_eq!(lines, vec![5, 6, 8, 10], "{f:?}");
    assert_eq!(f.len(), 4, "nothing but panic findings expected: {f:?}");

    // The identical file outside the hot path reports nothing.
    let f = scan_source("crates/decomp/src/fixture.rs", &src);
    assert!(f.is_empty(), "{f:?}");
}

#[test]
fn stringly_error_fires_and_allows_suppress() {
    let src = fixture("stringly_error.rs");
    let f = scan_source("crates/cq/src/fixture.rs", &src);
    // bad_flat, bad_generic (multi-line signature), bad_crate_visible.
    // Private fns, typed errors, Ok-position String, and the annotated
    // fn must not report.
    let lines = lines_of(&f, "stringly-error");
    assert_eq!(lines, vec![4, 8, 14], "{f:?}");
    assert_eq!(f.len(), 3, "{f:?}");

    // Test-like context: the rule does not apply at all.
    assert!(scan_source("crates/cq/tests/fixture.rs", &src).is_empty());
}

#[test]
fn print_in_lib_fires_in_lib_not_bin() {
    let src = fixture("print_in_lib.rs");
    let f = scan_source("crates/cq/src/fixture.rs", &src);
    let lines = lines_of(&f, "print-in-lib");
    assert_eq!(lines, vec![6, 7, 8, 9], "{f:?}");
    assert_eq!(f.len(), 4, "{f:?}");

    // Binaries may print.
    assert!(scan_source("crates/core/src/bin/fixture.rs", &src).is_empty());
}

#[test]
fn todo_markers_fire_and_allow_suppresses() {
    let src = fixture("todo_markers.rs");
    let f = scan_source("crates/cq/src/fixture.rs", &src);
    let lines = lines_of(&f, "todo-markers");
    assert_eq!(lines, vec![6, 8, 13], "{f:?}");
    assert_eq!(f.len(), 3, "{f:?}");
}

#[test]
fn unscoped_spawn_fires_scoped_does_not() {
    let src = fixture("unscoped_spawn.rs");
    let f = scan_source("crates/engine/src/fixture.rs", &src);
    let lines = lines_of(&f, "unscoped-spawn");
    assert_eq!(lines, vec![5, 10], "{f:?}");
    assert_eq!(f.len(), 2, "{f:?}");

    // Spawn rules apply to binaries too (daemon threads need the
    // annotation there as well).
    let f = scan_source("crates/core/src/bin/fixture.rs", &src);
    assert_eq!(lines_of(&f, "unscoped-spawn"), vec![5, 10]);
}

#[test]
fn malformed_allow_reports_each_near_miss() {
    let src = fixture("malformed_allow.rs");
    let f = scan_source("crates/cq/src/fixture.rs", &src);
    // missing reason, unknown lint, unquoted reason, wrong verb; the
    // doc comment mentioning the syntax is not an annotation.
    let lines = lines_of(&f, "malformed-allow");
    assert_eq!(lines, vec![5, 8, 11, 14], "{f:?}");
    assert_eq!(f.len(), 4, "{f:?}");
}

#[test]
fn workspace_is_clean_and_walk_skips_fixtures() {
    // CARGO_MANIFEST_DIR = <root>/crates/lint.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root");
    let findings = scan_workspace(root).expect("workspace walk");
    assert!(
        findings.is_empty(),
        "the workspace must lint clean; found:\n{}",
        findings
            .iter()
            .map(|f| format!("{}:{}: [{}] {}", f.file, f.line, f.lint, f.message))
            .collect::<Vec<_>>()
            .join("\n")
    );
    // If the walker ever descended into the fixtures (which violate on
    // purpose), the assertion above would have caught it — make the
    // skip explicit anyway.
    let files = cqd2_lint::workspace_files(root).expect("walk");
    assert!(
        files
            .iter()
            .all(|p| !p.to_string_lossy().contains("fixtures/")),
        "fixtures must be excluded from the workspace walk"
    );
}
