// Fixture: stdout/stderr writes in library code.
// Scanned under `crates/cq/src/fixture.rs` (lib) and
// `crates/core/src/bin/fixture.rs` (bin — prints allowed there).

fn noisy() {
    println!("to stdout");
    eprintln!("to stderr");
    print!("partial");
    eprint!("partial err");
}

fn quiet() {
    // cqd2-lint: allow(print-in-lib, reason = "fixture: suppression is honored")
    println!("sanctioned");
}

fn mentions_in_string() -> &'static str {
    "println!(not code)"
}
