// Fixture: every banned panic form in serve-path code, one per line.
// Scanned under the pseudo-path `crates/engine/src/server/fixture.rs`.

fn violations(x: Option<u8>, r: Result<u8, ()>) -> u8 {
    let a = x.unwrap();
    let b = r.expect("boom");
    if a == b {
        panic!("equal");
    }
    unreachable!("never");
}

fn suppressed(x: Option<u8>) -> u8 {
    // cqd2-lint: allow(panic-in-hot-path, reason = "fixture: provably present by construction")
    x.unwrap()
}

fn suppressed_same_line(x: Option<u8>) -> u8 {
    x.unwrap() // cqd2-lint: allow(panic-in-hot-path, reason = "fixture: same-line annotation")
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_panic() {
        let v: Vec<u8> = Vec::new();
        v.first().unwrap();
    }
}
