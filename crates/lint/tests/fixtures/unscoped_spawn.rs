// Fixture: detached threads vs scoped threads.
// Scanned under `crates/engine/src/fixture.rs`.

fn detached() {
    std::thread::spawn(|| {});
}

fn also_detached() {
    use std::thread;
    thread::spawn(|| {});
}

fn scoped_is_fine(data: &[u8]) {
    std::thread::scope(|s| {
        s.spawn(|| data.len());
    });
}

fn daemon() {
    // cqd2-lint: allow(unscoped-spawn, reason = "fixture: daemon-lifetime thread")
    std::thread::spawn(|| loop {});
}
