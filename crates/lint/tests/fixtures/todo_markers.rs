// Fixture: leftover development markers.
// Scanned under `crates/cq/src/fixture.rs`.

fn unfinished(flag: bool) -> u8 {
    if flag {
        todo!("finish me")
    } else {
        unimplemented!()
    }
}

fn debugging(x: u8) -> u8 {
    dbg!(x)
}

fn suppressed() -> u8 {
    // cqd2-lint: allow(todo-markers, reason = "fixture: suppression is honored")
    todo!("sanctioned")
}
