// Fixture: annotations that mention the marker but do not parse.
// Scanned under `crates/cq/src/fixture.rs`.

fn a() {}
// cqd2-lint: allow(panic-in-hot-path)
fn missing_reason() {}

// cqd2-lint: allow(no-such-lint, reason = "unknown lint name")
fn unknown_lint() {}

// cqd2-lint: allow(todo-markers, reason = )
fn unquoted_reason() {}

// cqd2-lint: suppress(todo-markers, reason = "wrong verb")
fn wrong_verb() {}

/// Doc text may mention `cqd2-lint: allow(...)` without being an annotation.
fn documented() {}
