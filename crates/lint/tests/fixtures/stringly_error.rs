// Fixture: stringly-typed public error surfaces.
// Scanned under the pseudo-path `crates/cq/src/fixture.rs`.

pub fn bad_flat(x: u8) -> Result<u8, String> {
    Err(format!("{x}"))
}

pub fn bad_generic<T: Clone>(
    x: T,
) -> Result<(T, usize), String> {
    Ok((x, 0))
}

pub(crate) fn bad_crate_visible() -> Result<(), String> {
    Ok(())
}

// Private stringly functions are tolerated (not part of the API).
fn private_ok() -> Result<u8, String> {
    Ok(0)
}

// Typed errors are the house style.
pub fn good_typed() -> Result<u8, std::num::ParseIntError> {
    "7".parse()
}

// A String in the Ok position is fine.
pub fn good_ok_string() -> Result<String, std::num::ParseIntError> {
    Ok(String::new())
}

// cqd2-lint: allow(stringly-error, reason = "fixture: suppression is honored")
pub fn suppressed() -> Result<u8, String> {
    Ok(0)
}
