//! Differential suite for the copy-free overlay execution paths: every
//! workload (Boolean / Count / Enumerate) run through [`BagOverlay`]
//! reads (`bcq` / `count` / `enumerator` on a shared
//! [`MaterializedBags`]) must produce **bit-identical** results to the
//! clone-based baseline (`deep_clone()` + the consuming `into_*`
//! passes), across randomized, empty, and duplicate-heavy databases —
//! and the overlay runs must not perturb the shared tree (re-running
//! yields the same answers, and concurrent readers agree).

use cqd2_cq::generate::random_database;
use cqd2_cq::{
    bcq_naive, count_naive, enumerate_naive, with_sequential_bags, ConjunctiveQuery, Database,
    MaterializedBags,
};
use cqd2_decomp::{Ghd, TreeDecomposition};
use cqd2_hypergraph::VertexId;

/// The bushy fixture: 7 atoms, hand-rooted GHD with two internal
/// mid-level nodes (so per-level tree passes have real parallelism to
/// exercise once the row threshold is crossed).
///
/// ```text
///            A(a,b)
///           /       \
///     B0(a,c,d)   B1(b,e,f)
///      /    \       /    \
///  C0(c,g) C1(d,h) C2(e,i) C3(f,j)
/// ```
fn bushy() -> (ConjunctiveQuery, Ghd) {
    let q = ConjunctiveQuery::parse(&[
        ("A", &["?a", "?b"]),
        ("B0", &["?a", "?c", "?d"]),
        ("B1", &["?b", "?e", "?f"]),
        ("C0", &["?c", "?g"]),
        ("C1", &["?d", "?h"]),
        ("C2", &["?e", "?i"]),
        ("C3", &["?f", "?j"]),
    ]);
    let bags: Vec<Vec<VertexId>> = [
        vec![0u32, 1],
        vec![0, 2, 3],
        vec![1, 4, 5],
        vec![2, 6],
        vec![3, 7],
        vec![4, 8],
        vec![5, 9],
    ]
    .into_iter()
    .map(|b| b.into_iter().map(VertexId).collect())
    .collect();
    let tree = vec![(0, 1), (0, 2), (1, 3), (1, 4), (2, 5), (2, 6)];
    let ghd = Ghd::from_td_exact(&q.hypergraph(), TreeDecomposition { bags, tree });
    ghd.validate(&q.hypergraph())
        .expect("hand-built GHD is valid");
    (q, ghd)
}

/// Overlay answers vs the clone-based consuming baseline on the SAME
/// shared tree, twice (the second round proves overlay runs leave the
/// base untouched). Returns `(bool, count, tuples)` for further checks.
fn assert_overlay_matches_clone(
    q: &ConjunctiveQuery,
    db: &Database,
    ghd: &Ghd,
) -> (bool, u128, Vec<Vec<u64>>) {
    let bags = MaterializedBags::build(q, db, ghd).expect("bag tree materializes");
    let clone_bool = bags.deep_clone().into_bcq();
    let clone_count = bags.deep_clone().into_count();
    let clone_tuples: Vec<Vec<u64>> = bags.deep_clone().into_enumerator().collect();
    for round in 0..2 {
        let (b, _) = bags.bcq_with_stats();
        assert_eq!(b, clone_bool, "bcq diverged (round {round})");
        let (n, _) = bags.count_with_stats();
        assert_eq!(n, clone_count, "count diverged (round {round})");
        let (e, _) = bags.enumerator_with_stats();
        let tuples: Vec<Vec<u64>> = e.collect();
        assert_eq!(tuples, clone_tuples, "enumeration diverged (round {round})");
    }
    (clone_bool, clone_count, clone_tuples)
}

#[test]
fn randomized_databases_agree() {
    let (q, ghd) = bushy();
    for seed in 0..8 {
        for domain in [3, 8, 32] {
            let db = random_database(&q, domain, 40, seed);
            let (b, n, mut tuples) = assert_overlay_matches_clone(&q, &db, &ghd);
            // Ground truth against the naive evaluator (small enough here).
            assert_eq!(b, bcq_naive(&q, &db), "naive bcq disagrees (seed {seed})");
            assert_eq!(
                n,
                count_naive(&q, &db),
                "naive count disagrees (seed {seed})"
            );
            let mut naive = enumerate_naive(&q, &db);
            naive.sort_unstable();
            tuples.sort_unstable();
            assert_eq!(tuples, naive, "naive enumeration disagrees (seed {seed})");
        }
    }
}

#[test]
fn empty_databases_agree() {
    let (q, ghd) = bushy();
    // Entirely empty relations.
    let mut empty = Database::new();
    for atom in &q.atoms {
        empty.insert_all(&atom.relation, &[]);
    }
    let (b, n, tuples) = assert_overlay_matches_clone(&q, &empty, &ghd);
    assert!(!b && n == 0 && tuples.is_empty());

    // One emptied leaf wipes everything through the semijoin passes:
    // keep every other relation populated, leave C3 with no tuples.
    let full = random_database(&q, 4, 30, 7);
    let mut db = Database::new();
    for (name, rel) in full.relations() {
        if name != "C3" {
            db.insert_all(name, &rel.tuples);
        }
    }
    db.insert_all("C3", &[]);
    let (b, n, tuples) = assert_overlay_matches_clone(&q, &db, &ghd);
    assert!(!b && n == 0 && tuples.is_empty());

    // Disjoint join domains: every relation nonempty, zero answers.
    let mut disjoint = Database::new();
    for (i, atom) in q.atoms.iter().enumerate() {
        let base = 1000 * (i as u64 + 1);
        let rows: Vec<Vec<u64>> = (0..20)
            .map(|r| {
                (0..atom.terms.len())
                    .map(|c| base + 10 * r + c as u64)
                    .collect()
            })
            .collect();
        disjoint.insert_all(&atom.relation, &rows);
    }
    let (b, n, tuples) = assert_overlay_matches_clone(&q, &disjoint, &ghd);
    assert!(!b && n == 0 && tuples.is_empty());
}

#[test]
fn duplicate_heavy_databases_agree() {
    let (q, ghd) = bushy();
    for seed in 0..4 {
        // Domain 2 with 300 tuples per relation: every relation is a
        // tiny distinct set inserted over and over — dedup and the
        // all-rows-survive (`None`) fast path both get hammered.
        let db = random_database(&q, 2, 300, seed);
        let (b, n, _) = assert_overlay_matches_clone(&q, &db, &ghd);
        assert_eq!(b, bcq_naive(&q, &db));
        assert_eq!(n, count_naive(&q, &db));
    }
}

#[test]
fn concurrent_enumerators_share_one_tree() {
    let (q, ghd) = bushy();
    let db = random_database(&q, 4, 60, 42);
    let bags = MaterializedBags::build(&q, &db, &ghd).expect("bag tree materializes");
    let reference: Vec<Vec<u64>> = bags.deep_clone().into_enumerator().collect();
    // Two threads enumerate the SAME shared materialization at once;
    // both must stream the full, identical answer set.
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..2)
            .map(|_| s.spawn(|| bags.enumerator().collect::<Vec<Vec<u64>>>()))
            .collect();
        for h in handles {
            assert_eq!(h.join().expect("no panic"), reference);
        }
    });
    // And interleaved single-thread cursors: advancing one must not
    // disturb the other.
    let mut c1 = bags.enumerator();
    let mut c2 = bags.enumerator();
    let mut out = Vec::new();
    loop {
        let a = c1.next();
        assert_eq!(a, c2.next(), "interleaved cursors diverged");
        match a {
            Some(t) => out.push(t),
            None => break,
        }
    }
    assert_eq!(out, reference);
}

#[test]
fn parallel_passes_match_sequential() {
    let (q, ghd) = bushy();
    // Big enough that the per-level parallel branch actually engages
    // (> 2^15 rows across the tree, two internal mid nodes), with a
    // domain that makes the semijoins genuinely filter — the parallel
    // pass must agree with the sequential one on REWRITING runs, not
    // just the all-survive fast path.
    // Domain ≫ rows per relation: each side's join-column values cover
    // only a fraction of the domain, so the semijoins drop real rows
    // (while dedup leaves the relations near full size).
    let db = random_database(&q, 20_000, 10_000, 5);
    let bags = MaterializedBags::build(&q, &db, &ghd).expect("bag tree materializes");
    assert!(
        bags.total_rows() > (1 << 15),
        "fixture must cross the parallel-pass threshold (got {} rows)",
        bags.total_rows()
    );
    let (par_bool, bool_stats) = bags.bcq_with_stats();
    assert!(
        bool_stats.rewritten > 0,
        "fixture must actually rewrite bags to exercise the parallel pass"
    );
    let (par_count, _) = bags.count_with_stats();
    let par_tuples: Vec<Vec<u64>> = bags.enumerator().collect();
    let (seq_bool, seq_count, seq_tuples) = with_sequential_bags(|| {
        let b = bags.bcq();
        let n = bags.count();
        let t: Vec<Vec<u64>> = bags.enumerator().collect();
        (b, n, t)
    });
    assert_eq!(par_bool, seq_bool);
    assert_eq!(par_count, seq_count);
    assert_eq!(par_tuples, seq_tuples);
    // Clone-based consuming baseline agrees too.
    assert_eq!(par_bool, bags.deep_clone().into_bcq());
    assert_eq!(par_count, bags.deep_clone().into_count());
    assert_eq!(
        par_tuples,
        bags.deep_clone()
            .into_enumerator()
            .collect::<Vec<Vec<u64>>>()
    );
}
