//! Data statistics: per-relation cardinalities and per-column distinct
//! counts, plus the selectivity-based join cardinality estimator the
//! planner's cost model consumes.
//!
//! The structural planner (`cqd2-engine`) is database-independent — its
//! analysis is cached per isomorphism class. These statistics are the
//! *data side* of the cost model: [`Database::stats`] snapshots what the
//! kernel would otherwise throw away (how many tuples, how selective
//! each column is), and [`estimate_join_rows`] turns that into System-R
//! style cardinality estimates — `|R ⋈ S| ≈ |R|·|S| / max(d_R(v), d_S(v))`
//! per shared variable `v`, with constants and repeated variables
//! contributing `1/d` factors of their column's distinct count.

use crate::database::Database;
use crate::query::{Atom, Term, Var};
use std::collections::{BTreeMap, HashMap, HashSet};

/// Statistics of one stored relation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RelationStats {
    /// Number of (distinct) tuples.
    pub cardinality: usize,
    /// Distinct values per column (`distinct.len()` = arity).
    pub distinct: Vec<usize>,
}

impl RelationStats {
    /// Collect statistics of one stored relation (one pass per column).
    /// This is the delta path's unit of work: after a delta, only the
    /// touched relations are re-collected and the rest of the snapshot's
    /// per-relation statistics are reused as-is.
    pub fn collect(rel: &crate::database::StoredRelation) -> RelationStats {
        let mut distinct = Vec::with_capacity(rel.arity);
        for col in 0..rel.arity {
            let values: HashSet<u64> = rel.tuples.iter().map(|t| t[col]).collect();
            distinct.push(values.len());
        }
        RelationStats {
            cardinality: rel.tuples.len(),
            distinct,
        }
    }
}

/// A statistics snapshot of a whole database.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DatabaseStats {
    relations: BTreeMap<String, RelationStats>,
    total_tuples: usize,
}

impl DatabaseStats {
    /// Collect statistics from `db` (one pass per relation).
    pub fn collect(db: &Database) -> DatabaseStats {
        Self::collect_filtered(db, |_| true)
    }

    /// Collect statistics for only the relations named by `q`'s atoms —
    /// the ones a cost estimate for `q` can consult. Cost is
    /// proportional to the data the query can touch, not to unrelated
    /// relations sharing the database; `total_tuples` covers just the
    /// collected relations.
    pub fn collect_for_query(db: &Database, q: &crate::query::ConjunctiveQuery) -> DatabaseStats {
        let names: HashSet<&str> = q.atoms.iter().map(|a| a.relation.as_str()).collect();
        Self::collect_filtered(db, |name| names.contains(name))
    }

    fn collect_filtered(db: &Database, mut include: impl FnMut(&str) -> bool) -> DatabaseStats {
        let mut relations = BTreeMap::new();
        let mut total_tuples = 0;
        for (name, rel) in db.relations() {
            if !include(name) {
                continue;
            }
            total_tuples += rel.tuples.len();
            relations.insert(name.to_string(), RelationStats::collect(rel));
        }
        DatabaseStats {
            relations,
            total_tuples,
        }
    }

    /// Reassemble a snapshot from persisted per-relation statistics
    /// (the snapshot store's load path: statistics are computed once at
    /// save time and carried in the file, so publishing a loaded
    /// database skips the `O(‖D‖)` collection pass entirely).
    /// `total_tuples` is recomputed from the cardinalities, so it can
    /// never disagree with the parts.
    pub fn from_parts(relations: BTreeMap<String, RelationStats>) -> DatabaseStats {
        let total_tuples = relations.values().map(|r| r.cardinality).sum();
        DatabaseStats {
            relations,
            total_tuples,
        }
    }

    /// Statistics for the post-delta database `db`, derived from this
    /// (pre-delta, full) snapshot by re-collecting **only** the
    /// relations in `touched` (sorted, as
    /// [`crate::delta::DeltaApplied::touched`] yields them) and reusing
    /// every other relation's statistics as-is. Relations this snapshot
    /// never saw are collected fresh, and relations no longer in `db`
    /// are dropped, so the result always describes exactly `db`.
    pub fn updated_for(&self, db: &Database, touched: &[String]) -> DatabaseStats {
        let mut relations = BTreeMap::new();
        for (name, rel) in db.relations() {
            let is_touched = touched
                .binary_search_by(|t| t.as_str().cmp(name))
                .is_ok();
            let stats = match self.relation(name) {
                Some(existing) if !is_touched => existing.clone(),
                _ => RelationStats::collect(rel),
            };
            relations.insert(name.to_string(), stats);
        }
        DatabaseStats::from_parts(relations)
    }

    /// Iterate over `(name, statistics)` pairs, in name order.
    pub fn relations(&self) -> impl Iterator<Item = (&str, &RelationStats)> {
        self.relations.iter().map(|(n, r)| (n.as_str(), r))
    }

    /// Statistics of one relation, if present.
    pub fn relation(&self, name: &str) -> Option<&RelationStats> {
        self.relations.get(name)
    }

    /// Total number of tuples across the collected relations (`‖D‖` up
    /// to constant factors; for [`DatabaseStats::collect_for_query`]
    /// snapshots, the tuples visible to that query).
    pub fn total_tuples(&self) -> usize {
        self.total_tuples
    }
}

impl Database {
    /// Snapshot per-relation cardinality and per-column distinct-count
    /// statistics (see [`DatabaseStats`]).
    pub fn stats(&self) -> DatabaseStats {
        DatabaseStats::collect(self)
    }
}

/// Estimated number of rows in the natural join of `atoms` under
/// `stats`.
///
/// System-R style: the estimate starts from the product of relation
/// cardinalities; every *re*-occurrence of a variable (across atoms or
/// within one) divides by the largest distinct count seen for it, and
/// every constant divides by its column's distinct count. An atom whose
/// relation is missing or empty makes the join empty.
pub fn estimate_join_rows<'a, I>(atoms: I, stats: &DatabaseStats) -> f64
where
    I: IntoIterator<Item = &'a Atom>,
{
    let mut rows = 1.0f64;
    let mut seen: HashMap<Var, f64> = HashMap::new();
    for atom in atoms {
        let Some(rs) = stats.relation(&atom.relation) else {
            return 0.0;
        };
        if rs.cardinality == 0 {
            return 0.0;
        }
        rows *= rs.cardinality as f64;
        for (i, term) in atom.terms.iter().enumerate() {
            let d_col = rs.distinct.get(i).copied().unwrap_or(1).max(1) as f64;
            match term {
                Term::Const(_) => rows /= d_col,
                Term::Var(v) => match seen.get(v).copied() {
                    Some(prev) => {
                        let m = prev.max(d_col);
                        rows /= m;
                        seen.insert(*v, m);
                    }
                    None => {
                        seen.insert(*v, d_col);
                    }
                },
            }
        }
    }
    rows.max(0.0)
}

/// Worst-case cost model of the naive backtracking join: the product of
/// the atom relation cardinalities (what the backtracker can touch with
/// no pruning). Missing or empty relations make it 0 — the backtracker
/// bails out immediately on those.
pub fn estimate_naive_cost<'a, I>(atoms: I, stats: &DatabaseStats) -> f64
where
    I: IntoIterator<Item = &'a Atom>,
{
    let mut cost = 1.0f64;
    for atom in atoms {
        match stats.relation(&atom.relation) {
            Some(rs) if rs.cardinality > 0 => cost *= rs.cardinality as f64,
            _ => return 0.0,
        }
    }
    cost
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::ConjunctiveQuery;

    fn fixture() -> Database {
        let mut db = Database::new();
        db.insert_all("R", &[vec![1, 10], vec![1, 11], vec![2, 12], vec![3, 12]]);
        db.insert_all("S", &[vec![10, 5], vec![11, 5]]);
        db
    }

    #[test]
    fn collects_cardinality_and_distinct_counts() {
        let stats = fixture().stats();
        let r = stats.relation("R").unwrap();
        assert_eq!(r.cardinality, 4);
        assert_eq!(r.distinct, vec![3, 3]);
        let s = stats.relation("S").unwrap();
        assert_eq!(s.cardinality, 2);
        assert_eq!(s.distinct, vec![2, 1]);
        assert_eq!(stats.total_tuples(), 6);
        assert!(stats.relation("T").is_none());
    }

    #[test]
    fn from_parts_rebuilds_a_collected_snapshot() {
        let collected = fixture().stats();
        let parts: BTreeMap<String, RelationStats> = collected
            .relations()
            .map(|(n, r)| (n.to_string(), r.clone()))
            .collect();
        let rebuilt = DatabaseStats::from_parts(parts);
        assert_eq!(rebuilt, collected);
        assert_eq!(rebuilt.total_tuples(), 6);
    }

    #[test]
    fn join_estimate_uses_distinct_counts() {
        let db = fixture();
        let stats = db.stats();
        let q = ConjunctiveQuery::parse(&[("R", &["?x", "?y"]), ("S", &["?y", "?z"])]);
        // |R|·|S| / max(d_R(y), d_S(y)) = 4·2 / 3.
        let est = estimate_join_rows(q.atoms.iter(), &stats);
        assert!((est - 8.0 / 3.0).abs() < 1e-9, "estimate {est}");
        // Single-atom estimate is the cardinality.
        let single = estimate_join_rows(q.atoms.iter().take(1), &stats);
        assert_eq!(single, 4.0);
    }

    #[test]
    fn constants_and_repeats_shrink_the_estimate() {
        let db = fixture();
        let stats = db.stats();
        let constant = ConjunctiveQuery::parse(&[("R", &["?x", "12"])]);
        let est = estimate_join_rows(constant.atoms.iter(), &stats);
        assert!((est - 4.0 / 3.0).abs() < 1e-9, "estimate {est}");
        let repeated = ConjunctiveQuery::parse(&[("R", &["?x", "?x"])]);
        let est = estimate_join_rows(repeated.atoms.iter(), &stats);
        assert!(est < 4.0, "repeat must be selective, got {est}");
    }

    #[test]
    fn empty_or_missing_relations_estimate_zero() {
        let db = fixture();
        let stats = db.stats();
        let q = ConjunctiveQuery::parse(&[("R", &["?x", "?y"]), ("T", &["?y"])]);
        assert_eq!(estimate_join_rows(q.atoms.iter(), &stats), 0.0);
        assert_eq!(estimate_naive_cost(q.atoms.iter(), &stats), 0.0);
    }

    #[test]
    fn query_scoped_collection_skips_unrelated_relations() {
        let mut db = fixture();
        db.insert_all("Huge", &[vec![1], vec![2], vec![3], vec![4]]);
        let q = ConjunctiveQuery::parse(&[("R", &["?x", "?y"]), ("S", &["?y", "?z"])]);
        let scoped = DatabaseStats::collect_for_query(&db, &q);
        assert!(scoped.relation("R").is_some());
        assert!(scoped.relation("S").is_some());
        assert!(scoped.relation("Huge").is_none());
        assert_eq!(scoped.total_tuples(), 6);
        // Estimates over the query's atoms agree with the full snapshot.
        let full = db.stats();
        assert_eq!(
            estimate_join_rows(q.atoms.iter(), &scoped),
            estimate_join_rows(q.atoms.iter(), &full)
        );
    }

    #[test]
    fn naive_cost_is_cardinality_product() {
        let db = fixture();
        let stats = db.stats();
        let q = ConjunctiveQuery::parse(&[("R", &["?x", "?y"]), ("S", &["?y", "?z"])]);
        assert_eq!(estimate_naive_cost(q.atoms.iter(), &stats), 8.0);
    }
}
