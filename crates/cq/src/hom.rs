//! Homomorphisms between queries, cores, and semantic ghw (Section 4.3).
//!
//! A homomorphism `h : q₁ → q₂` maps variables of `q₁` to terms of `q₂`
//! (constants map to themselves) such that every atom of `q₁` becomes an
//! atom of `q₂`. Two CQs are (Boolean-)equivalent iff homomorphisms exist
//! both ways; the *core* is the minimal retract, and the semantic
//! generalized hypertree width is `ghw(core(q))` (Barceló et al.,
//! reference \[4\] of the paper).

use crate::query::{Atom, ConjunctiveQuery, Term, Var};
use cqd2_decomp::widths::ghw_exact;
use std::collections::{BTreeSet, HashMap};

/// Find a homomorphism from `q1` to `q2`, as a map from `q1`'s variables
/// to terms of `q2`.
pub fn find_homomorphism(q1: &ConjunctiveQuery, q2: &ConjunctiveQuery) -> Option<Vec<Term>> {
    // Candidate targets: variables and constants of q2.
    let mut targets: Vec<Term> = q2.vars().map(Term::Var).collect();
    let consts: BTreeSet<u64> = q2
        .atoms
        .iter()
        .flat_map(|a| {
            a.terms.iter().filter_map(|t| match t {
                Term::Const(c) => Some(*c),
                _ => None,
            })
        })
        .collect();
    targets.extend(consts.into_iter().map(Term::Const));
    let atom_set: std::collections::HashSet<&Atom> = q2.atoms.iter().collect();
    let mut mapping: Vec<Option<Term>> = vec![None; q1.num_vars()];
    if assign(q1, &atom_set, &targets, 0, &mut mapping) {
        Some(mapping.into_iter().map(Option::unwrap).collect())
    } else {
        None
    }
}

fn assign(
    q1: &ConjunctiveQuery,
    q2_atoms: &std::collections::HashSet<&Atom>,
    targets: &[Term],
    v: usize,
    mapping: &mut Vec<Option<Term>>,
) -> bool {
    if v == q1.num_vars() {
        return check_all(q1, q2_atoms, mapping);
    }
    for &t in targets {
        mapping[v] = Some(t);
        // Early check: atoms fully mapped so far must already match.
        if atoms_consistent(q1, q2_atoms, mapping) && assign(q1, q2_atoms, targets, v + 1, mapping)
        {
            return true;
        }
    }
    mapping[v] = None;
    false
}

fn map_atom(atom: &Atom, mapping: &[Option<Term>]) -> Option<Atom> {
    let terms: Option<Vec<Term>> = atom
        .terms
        .iter()
        .map(|t| match t {
            Term::Const(c) => Some(Term::Const(*c)),
            Term::Var(v) => mapping[v.idx()],
        })
        .collect();
    terms.map(|terms| Atom {
        relation: atom.relation.clone(),
        terms,
    })
}

fn atoms_consistent(
    q1: &ConjunctiveQuery,
    q2_atoms: &std::collections::HashSet<&Atom>,
    mapping: &[Option<Term>],
) -> bool {
    q1.atoms.iter().all(|a| match map_atom(a, mapping) {
        Some(img) => q2_atoms.contains(&img),
        None => true, // not fully mapped yet
    })
}

fn check_all(
    q1: &ConjunctiveQuery,
    q2_atoms: &std::collections::HashSet<&Atom>,
    mapping: &[Option<Term>],
) -> bool {
    q1.atoms
        .iter()
        .all(|a| q2_atoms.contains(&map_atom(a, mapping).expect("fully mapped")))
}

/// Are `q1` and `q2` Boolean-equivalent (homomorphically equivalent)?
pub fn equivalent(q1: &ConjunctiveQuery, q2: &ConjunctiveQuery) -> bool {
    find_homomorphism(q1, q2).is_some() && find_homomorphism(q2, q1).is_some()
}

/// Compute the core of `q`: repeatedly find a proper endomorphism (one
/// whose atom image is a strict subset) and restrict to its image.
pub fn core_of(q: &ConjunctiveQuery) -> ConjunctiveQuery {
    let mut cur = q.clone();
    loop {
        match proper_endomorphism(&cur) {
            Some(mapping) => {
                cur = image_query(&cur, &mapping);
            }
            None => return cur,
        }
    }
}

/// Search for an endomorphism of `q` whose atom image has fewer atoms.
fn proper_endomorphism(q: &ConjunctiveQuery) -> Option<Vec<Term>> {
    // Enumerate endomorphisms via the hom search, but require a strictly
    // smaller atom image. We iterate over candidate "dropped" atoms: an
    // endomorphism avoiding atom a as an image of anything... simpler:
    // enumerate all endomorphisms via backtracking and test the image
    // size. To keep the search tractable we try, for each atom, a
    // targeted search that forbids the identity on some variable.
    let atom_set: std::collections::HashSet<&Atom> = q.atoms.iter().collect();
    let targets: Vec<Term> = q.vars().map(Term::Var).collect();
    let mut mapping: Vec<Option<Term>> = vec![None; q.num_vars()];
    let mut found: Option<Vec<Term>> = None;
    enumerate_endos(q, &atom_set, &targets, 0, &mut mapping, &mut |m| {
        let image: std::collections::HashSet<Atom> = q
            .atoms
            .iter()
            .map(|a| map_atom(a, m).expect("total"))
            .collect();
        if image.len() < q.atoms.len() {
            found = Some(m.iter().map(|t| t.expect("total")).collect());
            false
        } else {
            true
        }
    });
    found
}

fn enumerate_endos(
    q: &ConjunctiveQuery,
    atom_set: &std::collections::HashSet<&Atom>,
    targets: &[Term],
    v: usize,
    mapping: &mut Vec<Option<Term>>,
    on_total: &mut dyn FnMut(&[Option<Term>]) -> bool,
) -> bool {
    if v == q.num_vars() {
        return on_total(mapping);
    }
    for &t in targets {
        mapping[v] = Some(t);
        if atoms_consistent(q, atom_set, mapping)
            && !enumerate_endos(q, atom_set, targets, v + 1, mapping, on_total)
        {
            return false;
        }
    }
    mapping[v] = None;
    true
}

/// The query induced by applying `mapping` to `q` and deduplicating
/// atoms; variables not in the image are dropped and remaining variables
/// renumbered.
fn image_query(q: &ConjunctiveQuery, mapping: &[Term]) -> ConjunctiveQuery {
    let mapped: Vec<Atom> = q
        .atoms
        .iter()
        .map(|a| {
            let m: Vec<Option<Term>> = mapping.iter().map(|&t| Some(t)).collect();
            map_atom(a, &m).expect("total")
        })
        .collect();
    // Dedup atoms, renumber surviving variables.
    let mut seen: BTreeSet<String> = BTreeSet::new();
    let mut atoms: Vec<Atom> = Vec::new();
    for a in mapped {
        let key = format!("{a:?}");
        if seen.insert(key) {
            atoms.push(a);
        }
    }
    let mut renum: HashMap<Var, Var> = HashMap::new();
    let mut var_names: Vec<String> = Vec::new();
    for a in &mut atoms {
        for t in &mut a.terms {
            if let Term::Var(v) = t {
                let nv = *renum.entry(*v).or_insert_with(|| {
                    let nv = Var(var_names.len() as u32);
                    var_names.push(q.var_names[v.idx()].clone());
                    nv
                });
                *t = Term::Var(nv);
            }
        }
    }
    ConjunctiveQuery { atoms, var_names }
}

/// Semantic generalized hypertree width: `ghw(core(q))` (Section 4.3).
/// `None` when the core's hypergraph exceeds the exact-solver cap.
pub fn semantic_ghw(q: &ConjunctiveQuery) -> Option<usize> {
    let core = core_of(q);
    ghw_exact(&core.hypergraph())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_hom_exists() {
        let q = ConjunctiveQuery::parse(&[("R", &["?x", "?y"]), ("S", &["?y", "?z"])]);
        assert!(find_homomorphism(&q, &q).is_some());
    }

    #[test]
    fn hom_respects_relations() {
        let q1 = ConjunctiveQuery::parse(&[("R", &["?x", "?y"])]);
        let q2 = ConjunctiveQuery::parse(&[("S", &["?a", "?b"])]);
        assert!(find_homomorphism(&q1, &q2).is_none());
    }

    #[test]
    fn hom_onto_smaller() {
        // R(x,y) ∧ R(y,z) maps into R(a,a) (a self-loop).
        let q1 = ConjunctiveQuery::parse(&[("R", &["?x", "?y"]), ("R", &["?y", "?z"])]);
        let q2 = ConjunctiveQuery::parse(&[("R", &["?a", "?a"])]);
        assert!(find_homomorphism(&q1, &q2).is_some());
        assert!(find_homomorphism(&q2, &q1).is_none());
    }

    #[test]
    fn constants_must_be_preserved() {
        let q1 = ConjunctiveQuery::parse(&[("R", &["?x", "3"])]);
        let q2 = ConjunctiveQuery::parse(&[("R", &["?a", "4"])]);
        assert!(find_homomorphism(&q1, &q2).is_none());
        let q3 = ConjunctiveQuery::parse(&[("R", &["?a", "3"])]);
        assert!(find_homomorphism(&q1, &q3).is_some());
    }

    #[test]
    fn core_removes_redundant_atom() {
        // E(x,y) ∧ E(z,y): z ↦ x retracts to a single atom.
        let q = ConjunctiveQuery::parse(&[("E", &["?x", "?y"]), ("E", &["?z", "?y"])]);
        let c = core_of(&q);
        assert_eq!(c.atoms.len(), 1);
        assert!(equivalent(&q, &c));
    }

    #[test]
    fn triangle_is_its_own_core() {
        let q = ConjunctiveQuery::parse(&[
            ("E", &["?x", "?y"]),
            ("E", &["?y", "?z"]),
            ("E", &["?z", "?x"]),
        ]);
        let c = core_of(&q);
        assert_eq!(c.atoms.len(), 3);
    }

    #[test]
    fn path_retracts_into_loop() {
        // E(x,y) ∧ E(y,z) ∧ E(z,w) with an extra loop E(v,v): everything
        // maps onto the loop; core = E(v,v).
        let q = ConjunctiveQuery::parse(&[
            ("E", &["?x", "?y"]),
            ("E", &["?y", "?z"]),
            ("E", &["?z", "?w"]),
            ("E", &["?v", "?v"]),
        ]);
        let c = core_of(&q);
        assert_eq!(c.atoms.len(), 1);
        assert!(c.atoms[0].has_repeated_vars());
    }

    #[test]
    fn semantic_ghw_drops_with_redundancy() {
        // A cycle query with a "shortcut" atom making it retract to a
        // path: sem-ghw < ghw. Here: C4 cycle + the chord atoms that
        // allow folding... simpler: redundant second cycle.
        let q = ConjunctiveQuery::parse(&[
            ("E", &["?x", "?y"]),
            ("E", &["?y", "?z"]),
            ("F", &["?z", "?x"]),
            // Redundant copy with fresh variables:
            ("E", &["?a", "?b"]),
            ("E", &["?b", "?c"]),
        ]);
        let c = core_of(&q);
        assert_eq!(c.atoms.len(), 3);
        assert_eq!(semantic_ghw(&q), Some(2));
    }

    #[test]
    fn equivalence_is_symmetric_and_reflexive() {
        let q = ConjunctiveQuery::parse(&[("R", &["?x", "?y"])]);
        let q2 = ConjunctiveQuery::parse(&[("R", &["?a", "?b"]), ("R", &["?c", "?d"])]);
        assert!(equivalent(&q, &q));
        assert!(equivalent(&q, &q2));
        assert!(equivalent(&q2, &q));
    }
}
