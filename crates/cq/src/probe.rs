//! Purpose-built probe tables for the columnar kernel's hot paths.
//!
//! The std `HashMap`/`HashSet` used by the first kernel iteration spend
//! most of a semijoin in SipHash and bucket metadata; on the warm
//! re-execution path (prepared queries re-running tree passes over an
//! unchanged bag tree) the hash probes *are* the whole pass. These two
//! tables trade generality for probe speed:
//!
//! - [`KeyTable`]: a chained hash table over the key columns of a
//!   [`FlatRelation`]. Buckets are a power-of-two `u32` head array,
//!   chains a parallel `u32` next array, and keys are packed row-major
//!   into one `u64` buffer — three flat allocations total, no per-key
//!   boxing, no SipHash. Hashes come from the splitmix64 finalizer
//!   (multiply–xor–shift), cheap enough to recompute per probe and
//!   strong enough for power-of-two masking. Rows are inserted in
//!   reverse so each chain yields ascending row ids — match order (and
//!   therefore join output order) is identical to the insertion-order
//!   `HashMap` it replaces.
//! - [`AggTable`]: an open-addressing `key → u128 sum` map for the
//!   counting DP's child aggregation. Capacity is fixed at build time
//!   (distinct keys ≤ build rows, load factor ≤ ½), so inserts never
//!   resize and probes are a linear scan over a flat slot array.
//!
//! Both verify candidates by comparing the actual key columns, so hash
//! collisions cost a compare, never a wrong answer. A zero-column key
//! (vacuous sharing between bags) degenerates gracefully: every row
//! lands in one chain under the empty key and every probe matches the
//! first entry.

use crate::flat::FlatRelation;

/// Sentinel for "no row" in head/next/slot arrays.
const EMPTY: u32 = u32::MAX;

/// Hash-fold seed (the 64-bit golden ratio, as in splitmix64's stream
/// increment).
const SEED: u64 = 0x9E37_79B9_7F4A_7C15;

/// splitmix64 finalizer: full-avalanche mixing so power-of-two masking
/// is safe on adversarial (e.g. sequential) key values.
#[inline]
fn mix(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Hash a single-column key. Equals [`hash_key`] on a one-element slice.
#[inline]
pub(crate) fn hash1(v: u64) -> u64 {
    mix(SEED ^ v)
}

/// Hash a packed multi-column key by folding [`mix`] over the columns.
#[inline]
pub(crate) fn hash_key(key: &[u64]) -> u64 {
    let mut h = SEED;
    for &v in key {
        h = mix(h ^ v);
    }
    h
}

/// Chained hash table over the key columns of a relation: the build side
/// of semijoin/join probes. Self-contained (key columns are copied in),
/// so a cached table stays valid as long as the relation it was built
/// from is unchanged — the bag-tree overlay caches one per node.
#[derive(Debug, Clone)]
pub(crate) struct KeyTable {
    /// Key width (columns per key).
    k: usize,
    /// Bucket mask (`buckets - 1`, buckets a power of two).
    mask: u64,
    /// `heads[hash & mask]` → first row id in the chain.
    heads: Vec<u32>,
    /// `next[row]` → next row in the same chain.
    next: Vec<u32>,
    /// Packed keys, `rows * k` values row-major.
    keys: Vec<u64>,
}

impl KeyTable {
    /// Build over `rel`'s `key_cols`. O(rows) time, three allocations.
    pub(crate) fn build(rel: &FlatRelation, key_cols: &[usize]) -> KeyTable {
        let n = rel.len();
        crate::flat::check_row_index_fits(n);
        let k = key_cols.len();
        let buckets = (n.max(1) * 2).next_power_of_two();
        let mask = buckets as u64 - 1;
        let mut heads = vec![EMPTY; buckets];
        let mut next = vec![EMPTY; n];
        let mut keys = vec![0u64; n * k];
        let arity = rel.arity();
        // Reverse insertion: chains come out in ascending row order, so
        // probe match order equals insertion order (what the previous
        // HashMap-based join produced).
        for i in (0..n).rev() {
            let row = &rel.data[i * arity..i * arity + arity];
            let mut h = SEED;
            for (t, &c) in key_cols.iter().enumerate() {
                let v = row[c];
                keys[i * k + t] = v;
                h = mix(h ^ v);
            }
            let b = (h & mask) as usize;
            next[i] = heads[b];
            heads[b] = i as u32;
        }
        KeyTable {
            k,
            mask,
            heads,
            next,
            keys,
        }
    }

    /// Key width the table was built with.
    pub(crate) fn key_width(&self) -> usize {
        self.k
    }

    /// Does any build row have this key? `hash` must be the key's
    /// [`hash_key`]/[`hash1`] value (precomputed by chunked callers).
    #[inline]
    pub(crate) fn contains_hashed(&self, hash: u64, key: &[u64]) -> bool {
        debug_assert_eq!(key.len(), self.k);
        let mut i = self.heads[(hash & self.mask) as usize];
        while i != EMPTY {
            let o = i as usize * self.k;
            if &self.keys[o..o + self.k] == key {
                return true;
            }
            i = self.next[i as usize];
        }
        false
    }

    /// Does any build row have this key?
    #[cfg(test)]
    #[inline]
    pub(crate) fn contains(&self, key: &[u64]) -> bool {
        self.contains_hashed(hash_key(key), key)
    }

    /// Row ids of every build row with this key, in ascending order.
    #[inline]
    pub(crate) fn matches<'t, 'k>(&'t self, key: &'k [u64]) -> Matches<'t, 'k> {
        debug_assert_eq!(key.len(), self.k);
        Matches {
            table: self,
            key,
            cur: self.heads[(hash_key(key) & self.mask) as usize],
        }
    }
}

/// Iterator over the build rows matching one probe key (see
/// [`KeyTable::matches`]).
pub(crate) struct Matches<'t, 'k> {
    table: &'t KeyTable,
    key: &'k [u64],
    cur: u32,
}

impl Iterator for Matches<'_, '_> {
    type Item = u32;

    #[inline]
    fn next(&mut self) -> Option<u32> {
        while self.cur != EMPTY {
            let i = self.cur;
            self.cur = self.table.next[i as usize];
            let o = i as usize * self.table.k;
            if &self.table.keys[o..o + self.table.k] == self.key {
                return Some(i);
            }
        }
        None
    }
}

/// Open-addressing `key → u128 sum` map for the counting DP: aggregate
/// child-row extension counts by parent-shared key, then probe from the
/// parent side. Capacity is fixed at build (`2 * rows` slots, load ≤ ½),
/// so [`AggTable::add`] never resizes.
#[derive(Debug, Clone)]
pub(crate) struct AggTable {
    k: usize,
    mask: u64,
    /// `slots[hash & mask]` → entry index (EMPTY = vacant), linear probing.
    slots: Vec<u32>,
    /// Packed entry keys, `entries * k` values.
    keys: Vec<u64>,
    /// Per-entry sums, aligned with `keys`.
    sums: Vec<u128>,
}

impl AggTable {
    /// Aggregate `rel`'s rows by `key_cols`, summing `counts` (`None` =
    /// every row counts 1 — the leaf-bag case, which is what makes the
    /// table cacheable per leaf).
    pub(crate) fn build(
        rel: &FlatRelation,
        key_cols: &[usize],
        counts: Option<&[u128]>,
    ) -> AggTable {
        let n = rel.len();
        crate::flat::check_row_index_fits(n);
        let k = key_cols.len();
        let buckets = (n.max(1) * 2).next_power_of_two();
        let mut table = AggTable {
            k,
            mask: buckets as u64 - 1,
            slots: vec![EMPTY; buckets],
            keys: Vec::new(),
            sums: Vec::new(),
        };
        let arity = rel.arity();
        let mut scratch = vec![0u64; k];
        for i in 0..n {
            let row = &rel.data[i * arity..i * arity + arity];
            for (t, &c) in key_cols.iter().enumerate() {
                scratch[t] = row[c];
            }
            table.add(&scratch, counts.map_or(1, |c| c[i]));
        }
        table
    }

    /// Add `count` to the sum for `key` (inserting if new).
    fn add(&mut self, key: &[u64], count: u128) {
        let mut b = (hash_key(key) & self.mask) as usize;
        loop {
            let e = self.slots[b];
            if e == EMPTY {
                self.slots[b] = (self.sums.len()) as u32;
                self.keys.extend_from_slice(key);
                self.sums.push(count);
                return;
            }
            let o = e as usize * self.k;
            if &self.keys[o..o + self.k] == key {
                self.sums[e as usize] += count;
                return;
            }
            b = (b + 1) & self.mask as usize;
        }
    }

    /// The aggregated sum for `key`, if any build row had it.
    #[inline]
    pub(crate) fn get(&self, key: &[u64]) -> Option<u128> {
        debug_assert_eq!(key.len(), self.k);
        let mut b = (hash_key(key) & self.mask) as usize;
        loop {
            let e = self.slots[b];
            if e == EMPTY {
                return None;
            }
            let o = e as usize * self.k;
            if &self.keys[o..o + self.k] == key {
                return Some(self.sums[e as usize]);
            }
            b = (b + 1) & self.mask as usize;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Var;

    fn rel(vars: &[u32], tuples: &[&[u64]]) -> FlatRelation {
        FlatRelation::from_rows(
            vars.iter().map(|&i| Var(i)).collect(),
            &tuples.iter().map(|t| t.to_vec()).collect::<Vec<_>>(),
        )
    }

    #[test]
    fn key_table_single_column_contains_and_matches() {
        let r = rel(&[0, 1], &[&[1, 10], &[2, 20], &[1, 11], &[3, 30]]);
        let t = KeyTable::build(&r, &[0]);
        assert_eq!(t.key_width(), 1);
        assert!(t.contains(&[1]));
        assert!(t.contains(&[3]));
        assert!(!t.contains(&[4]));
        // Matches come back in ascending row order (`from_rows` dedup
        // leaves rows sorted: [1,10], [1,11], [2,20], [3,30]).
        assert_eq!(t.matches(&[1]).collect::<Vec<_>>(), vec![0, 1]);
        assert_eq!(t.matches(&[9]).count(), 0);
    }

    #[test]
    fn key_table_multi_column_verifies_actual_columns() {
        let r = rel(&[0, 1, 2], &[&[1, 2, 7], &[2, 1, 8], &[1, 2, 9]]);
        let t = KeyTable::build(&r, &[0, 1]);
        // Sorted by dedup: [1,2,7], [1,2,9], [2,1,8].
        assert_eq!(t.matches(&[1, 2]).collect::<Vec<_>>(), vec![0, 1]);
        // (2,1) hashes differently from (1,2) only by mixing order —
        // the compare must separate them regardless.
        assert_eq!(t.matches(&[2, 1]).collect::<Vec<_>>(), vec![2]);
        assert!(!t.contains(&[2, 2]));
    }

    #[test]
    fn key_table_empty_build_and_empty_key() {
        let e = FlatRelation::empty(vec![Var(0)]);
        let t = KeyTable::build(&e, &[0]);
        assert!(!t.contains(&[1]));
        // Zero-column key: every row matches iff the build side is
        // nonempty (vacuous sharing).
        let r = rel(&[0], &[&[1], &[2]]);
        let t0 = KeyTable::build(&r, &[]);
        assert!(t0.contains(&[]));
        assert_eq!(t0.matches(&[]).count(), 2);
        let t0e = KeyTable::build(&e, &[]);
        assert!(!t0e.contains(&[]));
    }

    #[test]
    fn key_table_dense_sequential_keys_stay_fast_shaped() {
        // Sequential keys are the classic weak spot of masked identity
        // hashing; splitmix avalanche must spread them. Sanity: every
        // key found, no cross-matches.
        let tuples: Vec<Vec<u64>> = (0..1000u64).map(|i| vec![i, i * 2]).collect();
        let refs: Vec<&[u64]> = tuples.iter().map(Vec::as_slice).collect();
        let r = rel(&[0, 1], &refs);
        let t = KeyTable::build(&r, &[0]);
        for i in 0..1000u64 {
            assert_eq!(t.matches(&[i]).count(), 1);
        }
        assert!(!t.contains(&[1000]));
    }

    #[test]
    fn agg_table_sums_counts_by_key() {
        let r = rel(&[0, 1], &[&[1, 10], &[1, 11], &[2, 20]]);
        // All-ones counts: multiplicity per key.
        let a = AggTable::build(&r, &[0], None);
        assert_eq!(a.get(&[1]), Some(2));
        assert_eq!(a.get(&[2]), Some(1));
        assert_eq!(a.get(&[3]), None);
        // Explicit counts aggregate by sum.
        let b = AggTable::build(&r, &[0], Some(&[5, 7, 11]));
        assert_eq!(b.get(&[1]), Some(12));
        assert_eq!(b.get(&[2]), Some(11));
        // Zero-column key aggregates everything.
        let c = AggTable::build(&r, &[], Some(&[5, 7, 11]));
        assert_eq!(c.get(&[]), Some(23));
    }

    #[test]
    fn agg_table_empty_relation() {
        let e = FlatRelation::empty(vec![Var(0)]);
        let a = AggTable::build(&e, &[0], None);
        assert_eq!(a.get(&[1]), None);
        let a0 = AggTable::build(&e, &[], None);
        assert_eq!(a0.get(&[]), None);
    }
}
