//! Poison-tolerant lock helpers for the serve path.
//!
//! A `std` mutex poisons when a holder panics, and every subsequent
//! `.lock().unwrap()` then panics too — one worker's bug takes down
//! every thread that touches the lock. The data these locks guard
//! (plan caches, prepared-handle caches, the job queue, connection
//! writers) is structurally valid at every intermediate step — caches
//! may at worst lose or duplicate an entry, which serving re-derives —
//! so the right policy is to keep serving with the data as it is
//! rather than to cascade the panic.
//!
//! The `cqd2-lint` `panic-in-hot-path` lint enforces the policy
//! mechanically: `.lock().unwrap()` / `.expect(...)` in serve-path
//! files is a lint error; acquisitions go through these helpers
//! instead.

use std::sync::{Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Lock `m`, recovering the guard if the mutex is poisoned.
pub fn lock_or_poison<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Read-lock `l`, recovering the guard if the lock is poisoned.
pub fn read_or_poison<T>(l: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    l.read().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Write-lock `l`, recovering the guard if the lock is poisoned.
pub fn write_or_poison<T>(l: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    l.write().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Wait on `cv`, recovering the guard if the mutex poisoned while
/// parked.
pub fn wait_or_poison<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(guard)
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex, RwLock};

    #[test]
    fn lock_or_poison_survives_a_poisoned_mutex() {
        let m = Arc::new(Mutex::new(7u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock().unwrap();
            panic!("poison the lock");
        })
        .join();
        assert!(m.is_poisoned());
        assert_eq!(*lock_or_poison(&m), 7);
        *lock_or_poison(&m) = 8;
        assert_eq!(*lock_or_poison(&m), 8);
    }

    #[test]
    fn rwlock_helpers_survive_poison() {
        let l = Arc::new(RwLock::new(vec![1, 2, 3]));
        let l2 = Arc::clone(&l);
        let _ = std::thread::spawn(move || {
            let _guard = l2.write().unwrap();
            panic!("poison the lock");
        })
        .join();
        assert_eq!(read_or_poison(&l).len(), 3);
        write_or_poison(&l).push(4);
        assert_eq!(read_or_poison(&l).len(), 4);
    }
}
