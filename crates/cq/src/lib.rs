//! Conjunctive queries and their evaluation.
//!
//! This crate is the database substrate of the reproduction: it provides
//! CQs, databases, and the evaluation algorithms whose complexity the
//! paper characterizes.
//!
//! - [`query`]: function-free conjunctive queries with named variables and
//!   constants; the hypergraph of a query (Section 2).
//! - [`database`]: databases as sets of ground atoms, stored per-relation.
//! - [`flat`]: the **columnar execution kernel** — [`FlatRelation`] packs
//!   all tuples into one contiguous buffer with a fixed stride, resolves
//!   schemas once per operator, joins/semijoins on packed key slices, and
//!   dedups only where an operator can introduce duplicates. All
//!   evaluators run on it.
//! - [`relation`]: the original row-store [`VRelation`], kept as the
//!   reference implementation for differential tests and benchmarks.
//! - [`stats`]: per-relation cardinality / per-column distinct-count
//!   statistics ([`Database::stats`]) and the selectivity-based join
//!   cardinality estimator the `cqd2-engine` cost model consumes.
//! - [`eval`]: **BCQ** evaluation three ways — naive backtracking join
//!   (exponential, the baseline), Yannakakis semijoin passes over a join
//!   tree, and GHD-guided evaluation (Prop. 2.2: polynomial for bounded
//!   ghw) — plus **#CQ** counting for full CQs by the junction-tree DP
//!   (Prop. 4.14). Bag materialization parallelizes over the
//!   decomposition's bags on large databases.
//! - [`hom`]: homomorphisms between queries, cores, Boolean equivalence,
//!   and semantic generalized hypertree width (`ghw` of the core,
//!   Section 4.3).
//! - [`generate`]: canonical queries from hypergraphs and seeded database
//!   generators (uniform and planted-solution), used by tests and the
//!   benchmark harness.

pub mod database;
pub mod delta;
pub mod eval;
pub mod flat;
pub mod generate;
pub mod hom;
pub mod par;
pub(crate) mod probe;
pub mod query;
pub mod relation;
pub mod stats;
pub mod sync;

pub use database::{BulkLoadError, Database};
pub use delta::{DatabaseDelta, DeltaApplied, DeltaError, RelationDelta};
pub use eval::{
    bcq_auto, bcq_auto_with, bcq_naive, bcq_via_ghd, count_auto, count_auto_with, count_naive,
    count_via_ghd, enumerate_naive, enumerate_via_ghd, with_sequential_bags, EvalError,
    GhdEnumerator, MaterializedBags, PassStats,
};
pub use flat::FlatRelation;
pub use hom::{core_of, find_homomorphism, semantic_ghw};
pub use query::{Atom, ConjunctiveQuery, Term, Var};
pub use relation::VRelation;
pub use stats::{estimate_join_rows, estimate_naive_cost, DatabaseStats, RelationStats};
pub use sync::{lock_or_poison, read_or_poison, wait_or_poison, write_or_poison};
