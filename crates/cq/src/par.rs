//! Minimal scoped-thread fan-out: the one worker-pool shape used by both
//! the evaluator's bag materialization and the serving engine's batch
//! executor (an atomic work cursor over `0..n` with per-slot result
//! cells, so no ordering pass is needed afterwards).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Compute `f(0), …, f(n-1)` on up to `workers` scoped threads and
/// return the results in index order. `workers <= 1` runs inline with no
/// thread setup. Work is distributed through a shared cursor, so
/// uneven task costs cannot straggle a statically-chunked worker.
pub fn scoped_map<T, F>(n: usize, workers: usize, f: F) -> Vec<T>
where
    T: Send + Sync,
    F: Fn(usize) -> T + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let workers = workers.clamp(1, n);
    if workers == 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<OnceLock<T>> = (0..n).map(|_| OnceLock::new()).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                if slots[i].set(f(i)).is_err() {
                    unreachable!("slot {i} written once");
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("every slot filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_index_order_and_runs_every_task() {
        for workers in [0, 1, 3, 64] {
            let out = scoped_map(10, workers, |i| i * i);
            assert_eq!(out, (0..10).map(|i| i * i).collect::<Vec<_>>());
        }
        assert!(scoped_map(0, 4, |i| i).is_empty());
    }
}
