//! BCQ evaluation and #CQ counting.
//!
//! Three evaluation strategies:
//!
//! - [`bcq_naive`] / [`enumerate_naive`] / [`count_naive`]: backtracking
//!   join — correct for every CQ, exponential in general. The baseline the
//!   paper's lower bounds are about.
//! - [`bcq_via_ghd`]: Prop. 2.2 — materialize one relation per GHD bag
//!   (joining the `λ` cover and the atoms assigned to the bag), then run a
//!   Yannakakis semijoin pass over the decomposition tree. Polynomial
//!   `O(‖D‖^k)` for width-`k` GHDs.
//! - [`count_via_ghd`]: Prop. 4.14 — junction-tree counting DP over the
//!   bag relations, computing `|q(D)|` for *full* CQs without enumerating.
//!
//! All strategies run on the columnar [`FlatRelation`] kernel
//! ([`crate::flat`]): bags materialize through packed-key hash joins, the
//! counting DP keeps per-row extension counts in a dense `Vec<u128>`
//! aligned with each bag's row order and aggregates child counts over
//! packed key slices (no `HashMap<Vec<u64>, _>` per tuple), and — on
//! databases large enough to pay for the threads — bag materialization
//! fans out over the decomposition's bags via `std::thread::scope`, since
//! each bag joins only already-bound atom relations and is independent of
//! every other bag.
//!
//! `bcq_auto` / `count_auto` pick the GHD route when an exact
//! decomposition is computable and fall back to naive otherwise.

use crate::database::Database;
use crate::flat::FlatRelation;
use crate::query::{ConjunctiveQuery, Var};
use cqd2_decomp::widths::ghw_decomposition;
use cqd2_decomp::Ghd;
use cqd2_hypergraph::VertexId;
use std::collections::HashMap;

// ---------------------------------------------------------------------
// Naive backtracking evaluation.
// ---------------------------------------------------------------------

/// Decide `q(D) ≠ ∅` by backtracking join.
pub fn bcq_naive(q: &ConjunctiveQuery, db: &Database) -> bool {
    let mut found = false;
    backtrack(q, db, &mut |_| {
        found = true;
        false // stop at the first solution
    });
    found
}

/// Count `|q(D)|` (all-variable assignments) by backtracking.
pub fn count_naive(q: &ConjunctiveQuery, db: &Database) -> u128 {
    let mut n: u128 = 0;
    backtrack(q, db, &mut |_| {
        n += 1;
        true
    });
    n
}

/// Enumerate all solutions as assignments in `Var` id order. Intended for
/// tests/verification on small instances.
pub fn enumerate_naive(q: &ConjunctiveQuery, db: &Database) -> Vec<Vec<u64>> {
    let mut out = Vec::new();
    backtrack(q, db, &mut |sol| {
        out.push(sol.to_vec());
        true
    });
    out.sort_unstable();
    out
}

/// Core backtracking loop. `on_solution` receives the full assignment
/// (indexed by `Var` id) and returns `false` to stop the search.
fn backtrack(q: &ConjunctiveQuery, db: &Database, on_solution: &mut dyn FnMut(&[u64]) -> bool) {
    let bound: Vec<FlatRelation> = q.atoms.iter().map(|a| FlatRelation::bind(a, db)).collect();
    if bound.iter().any(FlatRelation::is_empty) {
        return;
    }
    // A variable in no atom cannot be assigned — such queries do not arise
    // from our constructors; guard anyway.
    let mut covered = vec![false; q.num_vars()];
    for r in &bound {
        for v in r.vars() {
            covered[v.idx()] = true;
        }
    }
    if covered.iter().any(|c| !c) {
        return;
    }
    // Atom order: connected, smallest-relation-first.
    let order = atom_order(q, &bound);
    let mut assignment: Vec<Option<u64>> = vec![None; q.num_vars()];
    let _ = dfs(&bound, &order, 0, &mut assignment, on_solution);
}

fn atom_order(q: &ConjunctiveQuery, bound: &[FlatRelation]) -> Vec<usize> {
    let n = q.atoms.len();
    let mut order = Vec::with_capacity(n);
    let mut placed = vec![false; n];
    let mut seen_vars: std::collections::HashSet<Var> = std::collections::HashSet::new();
    for _ in 0..n {
        let next = (0..n)
            .filter(|&i| !placed[i])
            .min_by_key(|&i| {
                let overlap = bound[i]
                    .vars()
                    .iter()
                    .filter(|v| seen_vars.contains(v))
                    .count();
                (std::cmp::Reverse(overlap), bound[i].len(), i)
            })
            .expect("unplaced atom");
        placed[next] = true;
        seen_vars.extend(bound[next].vars().iter().copied());
        order.push(next);
    }
    order
}

fn dfs(
    bound: &[FlatRelation],
    order: &[usize],
    depth: usize,
    assignment: &mut Vec<Option<u64>>,
    on_solution: &mut dyn FnMut(&[u64]) -> bool,
) -> bool {
    if depth == order.len() {
        let sol: Vec<u64> = assignment
            .iter()
            .map(|a| a.expect("all assigned"))
            .collect();
        return on_solution(&sol);
    }
    let rel = &bound[order[depth]];
    'tuples: for t in rel.iter() {
        let mut newly = Vec::new();
        for (i, v) in rel.vars().iter().enumerate() {
            match assignment[v.idx()] {
                Some(val) => {
                    if val != t[i] {
                        for v in newly {
                            assignment[v] = None;
                        }
                        continue 'tuples;
                    }
                }
                None => {
                    assignment[v.idx()] = Some(t[i]);
                    newly.push(v.idx());
                }
            }
        }
        if !dfs(bound, order, depth + 1, assignment, on_solution) {
            return false;
        }
        for v in newly {
            assignment[v] = None;
        }
    }
    true
}

// ---------------------------------------------------------------------
// GHD-guided evaluation (Prop. 2.2 / Prop. 4.14).
// ---------------------------------------------------------------------

/// Total bound-atom tuples below which bag materialization stays
/// sequential: scoped-thread setup costs more than the joins it would
/// parallelize, and the serving layer already parallelizes across
/// requests.
const PARALLEL_BAG_THRESHOLD: usize = 4096;

thread_local! {
    /// When set, bag materialization on this thread stays sequential
    /// regardless of database size (see [`with_sequential_bags`]).
    static SEQUENTIAL_BAGS: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Run `f` with intra-query parallel bag materialization disabled on the
/// current thread. Batch executors that already fan requests out over
/// worker threads wrap per-request evaluation in this, so a large
/// database cannot trigger a second layer of thread spawning underneath
/// an already-saturated pool (threads × bags oversubscription).
pub fn with_sequential_bags<R>(f: impl FnOnce() -> R) -> R {
    SEQUENTIAL_BAGS.with(|flag| {
        let prev = flag.replace(true);
        let out = f();
        flag.set(prev);
        out
    })
}

/// Materialized bag relations plus a rooted tree, shared by the Boolean
/// and counting evaluators.
struct BagTree {
    relations: Vec<FlatRelation>,
    children: Vec<Vec<usize>>,
    post_order: Vec<usize>,
    root: usize,
}

fn build_bag_tree(q: &ConjunctiveQuery, db: &Database, ghd: &Ghd) -> Result<BagTree, String> {
    let h = q.hypergraph();
    ghd.validate(&h).map_err(|e| e.to_string())?;
    let bound: Vec<FlatRelation> = q.atoms.iter().map(|a| FlatRelation::bind(a, db)).collect();
    // Representative atom for each hypergraph edge (same variable set),
    // via the shared sorted-varset map on the query (one hash probe per
    // edge instead of re-sorting every atom's variable list per edge).
    let edge_rep: Vec<usize> = q
        .edge_representatives(&h)
        .into_iter()
        .enumerate()
        .map(|(i, rep)| rep.ok_or_else(|| format!("edge e{i} has no source atom")))
        .collect::<Result<_, String>>()?;
    // Assign every atom to one node whose bag contains its variables.
    let bag_contains = |u: usize, vars: &[Var]| {
        vars.iter()
            .all(|v| ghd.td.bags[u].binary_search(&VertexId(v.0)).is_ok())
    };
    let mut assigned: Vec<Vec<usize>> = vec![Vec::new(); ghd.td.bags.len()];
    for (ai, atom) in q.atoms.iter().enumerate() {
        let vars = atom.vars();
        let u = (0..ghd.td.bags.len())
            .find(|&u| bag_contains(u, &vars))
            .ok_or_else(|| format!("atom #{ai} fits in no bag"))?;
        assigned[u].push(ai);
    }
    // Materialize each bag: join cover representatives, project to bag,
    // then join all assigned atoms. Bags depend only on the shared
    // `bound` relations, never on each other, so on databases big enough
    // to amortize thread setup the bags materialize concurrently.
    let n = ghd.td.bags.len();
    let materialize = |u: usize| -> FlatRelation {
        let bag_vars: Vec<Var> = ghd.td.bags[u].iter().map(|v| Var(v.0)).collect();
        let mut rel = FlatRelation::unit();
        for &e in &ghd.covers[u] {
            rel = rel.join(&bound[edge_rep[e.idx()]]);
        }
        // Project to bag variables (cover may reach outside the bag).
        let keep: Vec<Var> = bag_vars
            .iter()
            .copied()
            .filter(|v| rel.vars().contains(v))
            .collect();
        rel = rel.project(&keep);
        for &ai in &assigned[u] {
            rel = rel.join(&bound[ai]);
        }
        rel
    };
    // Gate parallelism on the tuples the *query* actually touches (the
    // bound atom relations), not the whole database — a big unrelated
    // relation must not trigger thread spawns for a microsecond join.
    let bound_tuples: usize = bound.iter().map(FlatRelation::len).sum();
    let parallel = n > 1
        && bound_tuples >= PARALLEL_BAG_THRESHOLD
        && !SEQUENTIAL_BAGS.with(std::cell::Cell::get);
    let workers = if parallel {
        std::thread::available_parallelism().map_or(1, |p| p.get())
    } else {
        1
    };
    let relations: Vec<FlatRelation> = crate::par::scoped_map(n, workers, materialize);
    // Root the tree at node 0 and compute a post-order.
    let adj = ghd.td.adjacency();
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut post_order = Vec::with_capacity(n);
    let mut visited = vec![false; n];
    // Iterative DFS computing children and post-order.
    let root = 0usize;
    let mut stack = vec![(root, usize::MAX, false)];
    while let Some((u, parent, processed)) = stack.pop() {
        if processed {
            post_order.push(u);
            continue;
        }
        if visited[u] {
            continue;
        }
        visited[u] = true;
        stack.push((u, parent, true));
        for &w in &adj[u] {
            if w != parent && !visited[w] {
                children[u].push(w);
                stack.push((w, u, false));
            }
        }
    }
    Ok(BagTree {
        relations,
        children,
        post_order,
        root,
    })
}

/// Decide `q(D) ≠ ∅` using a GHD of the query's hypergraph
/// (Prop. 2.2: polynomial for bounded-width GHDs).
pub fn bcq_via_ghd(q: &ConjunctiveQuery, db: &Database, ghd: &Ghd) -> Result<bool, String> {
    let mut bt = build_bag_tree(q, db, ghd)?;
    // Bottom-up semijoin pass.
    for &u in &bt.post_order.clone() {
        if bt.relations[u].is_empty() {
            return Ok(false);
        }
        for c in bt.children[u].clone() {
            let filtered = bt.relations[u].semijoin(&bt.relations[c]);
            bt.relations[u] = filtered;
            if bt.relations[u].is_empty() {
                return Ok(false);
            }
        }
    }
    Ok(!bt.relations[bt.root].is_empty())
}

/// Count `|q(D)|` for a full CQ using the junction-tree DP over a GHD
/// (Prop. 4.14: polynomial for bounded-width GHDs).
///
/// Subtree extension counts live in a dense `Vec<u128>` aligned with
/// each bag's row order; merging a child aggregates its counts by packed
/// shared-variable key and rewrites the parent in one pass (rows with no
/// child match drop out, exactly the Yannakakis filter).
pub fn count_via_ghd(q: &ConjunctiveQuery, db: &Database, ghd: &Ghd) -> Result<u128, String> {
    let mut bt = build_bag_tree(q, db, ghd)?;
    let mut counts: Vec<Vec<u128>> = bt.relations.iter().map(|r| vec![1u128; r.len()]).collect();
    for &u in &bt.post_order.clone() {
        for &c in &bt.children[u].clone() {
            let (new_rel, new_counts) = {
                let parent = &bt.relations[u];
                let child = &bt.relations[c];
                // Shared variables between bags u and c, with key
                // positions resolved once.
                let shared: Vec<Var> = parent
                    .vars()
                    .iter()
                    .copied()
                    .filter(|v| child.vars().contains(v))
                    .collect();
                let c_pos: Vec<usize> = shared
                    .iter()
                    .map(|v| child.vars().iter().position(|w| w == v).expect("shared"))
                    .collect();
                let u_pos: Vec<usize> = shared
                    .iter()
                    .map(|v| parent.vars().iter().position(|w| w == v).expect("shared"))
                    .collect();
                let arity = parent.arity();
                let mut data: Vec<u64> = Vec::with_capacity(parent.len() * arity);
                let mut kept: Vec<u128> = Vec::with_capacity(parent.len());
                if shared.len() == 1 {
                    // Single-column fast path: aggregate and probe on the
                    // raw value.
                    let (cp, up) = (c_pos[0], u_pos[0]);
                    let mut agg: HashMap<u64, u128> = HashMap::with_capacity(child.len());
                    for (i, t) in child.iter().enumerate() {
                        *agg.entry(t[cp]).or_insert(0) += counts[c][i];
                    }
                    for (i, t) in parent.iter().enumerate() {
                        if let Some(&s) = agg.get(&t[up]) {
                            data.extend_from_slice(t);
                            kept.push(counts[u][i] * s);
                        }
                    }
                } else {
                    // General path: packed multi-column keys (also covers
                    // vacuous sharing, where every key is empty).
                    let mut agg: HashMap<Box<[u64]>, u128> = HashMap::with_capacity(child.len());
                    let mut scratch: Vec<u64> = Vec::with_capacity(shared.len());
                    for (i, t) in child.iter().enumerate() {
                        scratch.clear();
                        scratch.extend(c_pos.iter().map(|&p| t[p]));
                        match agg.get_mut(scratch.as_slice()) {
                            Some(sum) => *sum += counts[c][i],
                            None => {
                                agg.insert(scratch.as_slice().into(), counts[c][i]);
                            }
                        }
                    }
                    for (i, t) in parent.iter().enumerate() {
                        scratch.clear();
                        scratch.extend(u_pos.iter().map(|&p| t[p]));
                        if let Some(&s) = agg.get(scratch.as_slice()) {
                            data.extend_from_slice(t);
                            kept.push(counts[u][i] * s);
                        }
                    }
                }
                let rows = kept.len();
                (
                    FlatRelation::from_parts(parent.vars().to_vec(), rows, data),
                    kept,
                )
            };
            bt.relations[u] = new_rel;
            counts[u] = new_counts;
        }
    }
    Ok(counts[bt.root].iter().sum())
}

/// Decide BCQ, choosing the GHD route when an exact decomposition is
/// available (small hypergraph) and falling back to naive search.
pub fn bcq_auto(q: &ConjunctiveQuery, db: &Database) -> bool {
    bcq_auto_with(q, db, None)
}

/// [`bcq_auto`] with an optional precomputed GHD: a caller that already
/// holds a decomposition of `q.hypergraph()` (e.g. a plan cache) skips
/// the re-decomposition entirely.
pub fn bcq_auto_with(q: &ConjunctiveQuery, db: &Database, ghd: Option<&Ghd>) -> bool {
    match ghd {
        Some(g) => bcq_via_ghd(q, db, g).expect("precomputed ghd is valid for this query"),
        None => match ghw_decomposition(&q.hypergraph()) {
            Some(g) => bcq_via_ghd(q, db, &g).expect("ghd is valid for this query"),
            None => bcq_naive(q, db),
        },
    }
}

/// Count answers, choosing the GHD route when possible.
pub fn count_auto(q: &ConjunctiveQuery, db: &Database) -> u128 {
    count_auto_with(q, db, None)
}

/// [`count_auto`] with an optional precomputed GHD (see [`bcq_auto_with`]).
pub fn count_auto_with(q: &ConjunctiveQuery, db: &Database, ghd: Option<&Ghd>) -> u128 {
    match ghd {
        Some(g) => count_via_ghd(q, db, g).expect("precomputed ghd is valid for this query"),
        None => match ghw_decomposition(&q.hypergraph()) {
            Some(g) => count_via_ghd(q, db, &g).expect("ghd is valid for this query"),
            None => count_naive(q, db),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{canonical_query, planted_database, random_database};
    use cqd2_hypergraph::generators::{hyperchain, hypercycle};

    fn path_query() -> ConjunctiveQuery {
        ConjunctiveQuery::parse(&[("R", &["?x", "?y"]), ("S", &["?y", "?z"])])
    }

    #[test]
    fn naive_path_query() {
        let q = path_query();
        let mut db = Database::new();
        db.insert_all("R", &[vec![1, 2], vec![4, 5]]);
        db.insert_all("S", &[vec![2, 3], vec![2, 9]]);
        assert!(bcq_naive(&q, &db));
        assert_eq!(count_naive(&q, &db), 2);
        let sols = enumerate_naive(&q, &db);
        assert_eq!(sols, vec![vec![1, 2, 3], vec![1, 2, 9]]);
    }

    #[test]
    fn naive_no_solution() {
        let q = path_query();
        let mut db = Database::new();
        db.insert("R", &[1, 2]);
        db.insert("S", &[3, 4]);
        assert!(!bcq_naive(&q, &db));
        assert_eq!(count_naive(&q, &db), 0);
    }

    #[test]
    fn ghd_agrees_with_naive_on_path() {
        let q = path_query();
        let mut db = Database::new();
        db.insert_all("R", &[vec![1, 2], vec![4, 5], vec![7, 8]]);
        db.insert_all("S", &[vec![2, 3], vec![5, 6]]);
        let ghd = ghw_decomposition(&q.hypergraph()).unwrap();
        assert!(bcq_via_ghd(&q, &db, &ghd).unwrap());
        assert_eq!(count_via_ghd(&q, &db, &ghd).unwrap(), 2);
    }

    #[test]
    fn triangle_query_with_planted_solution() {
        let q = ConjunctiveQuery::parse(&[
            ("R", &["?x", "?y"]),
            ("S", &["?y", "?z"]),
            ("T", &["?z", "?x"]),
        ]);
        let db = planted_database(&q, 20, 30, 3);
        assert!(bcq_naive(&q, &db));
        assert!(bcq_auto(&q, &db));
        assert_eq!(count_auto(&q, &db), count_naive(&q, &db));
    }

    #[test]
    fn evaluators_agree_on_random_instances() {
        for seed in 0..8 {
            let h = if seed % 2 == 0 {
                hyperchain(3, 3)
            } else {
                hypercycle(4, 2)
            };
            let q = canonical_query(&h);
            let db = random_database(&q, 6, 25, seed);
            let naive = bcq_naive(&q, &db);
            let ghd = ghw_decomposition(&q.hypergraph()).unwrap();
            let via = bcq_via_ghd(&q, &db, &ghd).unwrap();
            assert_eq!(naive, via, "BCQ mismatch on seed {seed}");
            let cn = count_naive(&q, &db);
            let cg = count_via_ghd(&q, &db, &ghd).unwrap();
            assert_eq!(cn, cg, "#CQ mismatch on seed {seed}");
        }
    }

    #[test]
    fn ghd_route_crosses_the_parallel_threshold() {
        // A database above PARALLEL_BAG_THRESHOLD exercises the scoped-
        // thread materialization path; answers must match a full join
        // computed with the reference row store (the naive backtracker
        // has no index and would need ~n³ work at this size).
        let q = canonical_query(&hyperchain(3, 2));
        let per_relation = PARALLEL_BAG_THRESHOLD / 3 + 256;
        let db = random_database(&q, 1000, per_relation, 11);
        assert!(db.size() >= PARALLEL_BAG_THRESHOLD, "fixture too small");
        let mut joined = crate::relation::VRelation::unit();
        for atom in &q.atoms {
            joined = joined.join(&crate::relation::VRelation::bind(atom, &db));
        }
        let expected = joined.tuples.len() as u128;
        let ghd = ghw_decomposition(&q.hypergraph()).unwrap();
        assert_eq!(bcq_via_ghd(&q, &db, &ghd).unwrap(), expected > 0);
        assert_eq!(count_via_ghd(&q, &db, &ghd).unwrap(), expected);
        // The batch-executor opt-out must force the sequential path and
        // produce identical answers.
        let sequential = with_sequential_bags(|| count_via_ghd(&q, &db, &ghd).unwrap());
        assert_eq!(sequential, expected);
    }

    #[test]
    fn constants_and_repeats_in_evaluation() {
        let q = ConjunctiveQuery::parse(&[("R", &["?x", "?x", "5"]), ("S", &["?x", "?y"])]);
        let mut db = Database::new();
        db.insert_all("R", &[vec![1, 1, 5], vec![2, 3, 5], vec![4, 4, 6]]);
        db.insert_all("S", &[vec![1, 10], vec![1, 11], vec![4, 12]]);
        assert!(bcq_naive(&q, &db));
        assert_eq!(count_naive(&q, &db), 2); // x=1 with y in {10,11}
        assert_eq!(count_auto(&q, &db), 2);
    }

    #[test]
    fn empty_query_edge_cases() {
        // All-constant atom: acts as an existence check.
        let q = ConjunctiveQuery::parse(&[("R", &["1", "2"])]);
        let mut db = Database::new();
        db.insert("R", &[1, 2]);
        assert!(bcq_naive(&q, &db));
        assert_eq!(count_naive(&q, &db), 1); // the empty assignment
        let mut db2 = Database::new();
        db2.insert("R", &[9, 9]);
        assert!(!bcq_naive(&q, &db2));
    }

    #[test]
    fn auto_with_precomputed_ghd_matches_recomputed_route() {
        // The plan-cache entry point: a caller holding a decomposition
        // (here: freshly computed, in practice translated from a cache
        // hit) must get the same answers without re-decomposing.
        let q = canonical_query(&hypercycle(5, 2));
        let db = planted_database(&q, 7, 18, 4);
        let ghd = ghw_decomposition(&q.hypergraph()).unwrap();
        assert_eq!(bcq_auto_with(&q, &db, Some(&ghd)), bcq_auto(&q, &db));
        assert_eq!(count_auto_with(&q, &db, Some(&ghd)), count_auto(&q, &db));
        assert_eq!(bcq_auto_with(&q, &db, None), bcq_auto(&q, &db));
        assert_eq!(count_auto_with(&q, &db, None), count_auto(&q, &db));
    }

    #[test]
    fn cartesian_product_counting() {
        let q = ConjunctiveQuery::parse(&[("R", &["?x"]), ("S", &["?y"])]);
        let mut db = Database::new();
        db.insert_all("R", &[vec![1], vec![2], vec![3]]);
        db.insert_all("S", &[vec![7], vec![8]]);
        assert_eq!(count_naive(&q, &db), 6);
        assert_eq!(count_auto(&q, &db), 6);
    }
}
