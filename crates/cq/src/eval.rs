//! BCQ evaluation, #CQ counting, and answer enumeration.
//!
//! Four evaluation strategies:
//!
//! - [`bcq_naive`] / [`enumerate_naive`] / [`count_naive`]: backtracking
//!   join — correct for every CQ, exponential in general. The baseline the
//!   paper's lower bounds are about.
//! - [`bcq_via_ghd`]: Prop. 2.2 — materialize one relation per GHD bag
//!   (joining the `λ` cover and the atoms assigned to the bag), then run a
//!   Yannakakis semijoin pass over the decomposition tree. Polynomial
//!   `O(‖D‖^k)` for width-`k` GHDs.
//! - [`count_via_ghd`]: Prop. 4.14 — junction-tree counting DP over the
//!   bag relations, computing `|q(D)|` for *full* CQs without enumerating.
//! - [`enumerate_via_ghd`]: answer *enumeration* in the
//!   preprocessing-then-constant-delay shape of Durand & Grandjean and
//!   Carmeli & Kröll: semijoin-reduce the bag tree bottom-up **and**
//!   top-down (so every surviving bag row extends to a full answer), then
//!   stream answers from a [`GhdEnumerator`] that walks the reduced tree
//!   top-down with hash-indexed bag lookups — no dead-end backtracking,
//!   answers on demand.
//!
//! GHD-guided entry points return [`EvalError`] (a typed
//! `std::error::Error`) when the supplied decomposition does not fit the
//! query, instead of stringly-typed errors.
//!
//! All strategies run on the columnar [`FlatRelation`] kernel
//! ([`crate::flat`]): bags materialize through packed-key hash joins, the
//! counting DP keeps per-row extension counts in a dense `Vec<u128>`
//! aligned with each bag's row order and aggregates child counts over
//! packed key slices (no `HashMap<Vec<u64>, _>` per tuple), and — on
//! databases large enough to pay for the threads — bag materialization
//! fans out over the decomposition's bags via `std::thread::scope`, since
//! each bag joins only already-bound atom relations and is independent of
//! every other bag.
//!
//! `bcq_auto` / `count_auto` pick the GHD route when an exact
//! decomposition is computable and fall back to naive otherwise.

use crate::database::Database;
use crate::flat::FlatRelation;
use crate::probe::{AggTable, KeyTable};
use crate::query::{ConjunctiveQuery, Var};
use cqd2_decomp::ghd::GhdError;
use cqd2_decomp::widths::ghw_decomposition;
use cqd2_decomp::Ghd;
use cqd2_hypergraph::VertexId;
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

// ---------------------------------------------------------------------
// Typed evaluation errors.
// ---------------------------------------------------------------------

/// Why a GHD-guided evaluation could not run: the supplied decomposition
/// does not fit the query. All variants are *caller* errors (a plan built
/// for a different query, or a hand-rolled GHD); a decomposition produced
/// from `q.hypergraph()` never triggers them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// The decomposition fails [`Ghd::validate`] on the query's hypergraph.
    InvalidGhd(GhdError),
    /// Hypergraph edge `edge` has no source atom with the same variable
    /// set — the GHD's covers reference a relation the query cannot name.
    EdgeWithoutAtom {
        /// Index of the uncovered hypergraph edge.
        edge: usize,
    },
    /// Atom `atom`'s variables fit in no bag of the decomposition.
    AtomFitsNoBag {
        /// Index of the unplaceable atom.
        atom: usize,
    },
}

impl std::fmt::Display for EvalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvalError::InvalidGhd(e) => write!(f, "invalid ghd for this query: {e}"),
            EvalError::EdgeWithoutAtom { edge } => {
                write!(f, "hypergraph edge e{edge} has no source atom")
            }
            EvalError::AtomFitsNoBag { atom } => write!(f, "atom #{atom} fits in no bag"),
        }
    }
}

impl std::error::Error for EvalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EvalError::InvalidGhd(e) => Some(e),
            _ => None,
        }
    }
}

// ---------------------------------------------------------------------
// Naive backtracking evaluation.
// ---------------------------------------------------------------------

/// Decide `q(D) ≠ ∅` by backtracking join.
pub fn bcq_naive(q: &ConjunctiveQuery, db: &Database) -> bool {
    let mut found = false;
    backtrack(q, db, &mut |_| {
        found = true;
        false // stop at the first solution
    });
    found
}

/// Count `|q(D)|` (all-variable assignments) by backtracking.
pub fn count_naive(q: &ConjunctiveQuery, db: &Database) -> u128 {
    let mut n: u128 = 0;
    backtrack(q, db, &mut |_| {
        n += 1;
        true
    });
    n
}

/// Enumerate all solutions as assignments in `Var` id order. Intended for
/// tests/verification on small instances.
pub fn enumerate_naive(q: &ConjunctiveQuery, db: &Database) -> Vec<Vec<u64>> {
    let mut out = Vec::new();
    backtrack(q, db, &mut |sol| {
        out.push(sol.to_vec());
        true
    });
    out.sort_unstable();
    out
}

/// Enumerate up to `limit` solutions (`None` = all) in backtracking
/// search order, **unsorted**, stopping the search as soon as the limit
/// is reached. The engine's naive-plan fallback for `Enumerate`
/// workloads; [`enumerate_naive`] remains the sorted reference.
pub fn enumerate_naive_limit(
    q: &ConjunctiveQuery,
    db: &Database,
    limit: Option<usize>,
) -> Vec<Vec<u64>> {
    if limit == Some(0) {
        return Vec::new();
    }
    let mut out = Vec::new();
    backtrack(q, db, &mut |sol| {
        out.push(sol.to_vec());
        limit.is_none_or(|l| out.len() < l)
    });
    out
}

/// Core backtracking loop. `on_solution` receives the full assignment
/// (indexed by `Var` id) and returns `false` to stop the search.
fn backtrack(q: &ConjunctiveQuery, db: &Database, on_solution: &mut dyn FnMut(&[u64]) -> bool) {
    let bound: Vec<FlatRelation> = q.atoms.iter().map(|a| FlatRelation::bind(a, db)).collect();
    if bound.iter().any(FlatRelation::is_empty) {
        return;
    }
    // A variable in no atom cannot be assigned — such queries do not arise
    // from our constructors; guard anyway.
    let mut covered = vec![false; q.num_vars()];
    for r in &bound {
        for v in r.vars() {
            covered[v.idx()] = true;
        }
    }
    if covered.iter().any(|c| !c) {
        return;
    }
    // Atom order: connected, smallest-relation-first.
    let order = atom_order(q, &bound);
    let mut assignment: Vec<Option<u64>> = vec![None; q.num_vars()];
    let _ = dfs(&bound, &order, 0, &mut assignment, on_solution);
}

fn atom_order(q: &ConjunctiveQuery, bound: &[FlatRelation]) -> Vec<usize> {
    let n = q.atoms.len();
    let mut order = Vec::with_capacity(n);
    let mut placed = vec![false; n];
    let mut seen_vars: std::collections::HashSet<Var> = std::collections::HashSet::new();
    for _ in 0..n {
        let next = (0..n)
            .filter(|&i| !placed[i])
            .min_by_key(|&i| {
                let overlap = bound[i]
                    .vars()
                    .iter()
                    .filter(|v| seen_vars.contains(v))
                    .count();
                (std::cmp::Reverse(overlap), bound[i].len(), i)
            })
            // cqd2-lint: allow(panic-in-hot-path, reason = "the loop runs while unplaced atoms remain, so min_by_key sees a nonempty iterator")
            .expect("unplaced atom");
        placed[next] = true;
        seen_vars.extend(bound[next].vars().iter().copied());
        order.push(next);
    }
    order
}

fn dfs(
    bound: &[FlatRelation],
    order: &[usize],
    depth: usize,
    assignment: &mut Vec<Option<u64>>,
    on_solution: &mut dyn FnMut(&[u64]) -> bool,
) -> bool {
    if depth == order.len() {
        let sol: Vec<u64> = assignment
            .iter()
            // cqd2-lint: allow(panic-in-hot-path, reason = "depth == order.len() means every variable was bound on the way down")
            .map(|a| a.expect("all assigned"))
            .collect();
        return on_solution(&sol);
    }
    let rel = &bound[order[depth]];
    'tuples: for t in rel.iter() {
        let mut newly = Vec::new();
        for (i, v) in rel.vars().iter().enumerate() {
            match assignment[v.idx()] {
                Some(val) => {
                    if val != t[i] {
                        for v in newly {
                            assignment[v] = None;
                        }
                        continue 'tuples;
                    }
                }
                None => {
                    assignment[v.idx()] = Some(t[i]);
                    newly.push(v.idx());
                }
            }
        }
        if !dfs(bound, order, depth + 1, assignment, on_solution) {
            return false;
        }
        for v in newly {
            assignment[v] = None;
        }
    }
    true
}

// ---------------------------------------------------------------------
// GHD-guided evaluation (Prop. 2.2 / Prop. 4.14).
// ---------------------------------------------------------------------

/// Total bound-atom tuples below which bag materialization stays
/// sequential: scoped-thread setup costs more than the joins it would
/// parallelize, and the serving layer already parallelizes across
/// requests.
const PARALLEL_BAG_THRESHOLD: usize = 4096;

thread_local! {
    /// When set, bag materialization on this thread stays sequential
    /// regardless of database size (see [`with_sequential_bags`]).
    static SEQUENTIAL_BAGS: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Run `f` with intra-query parallel bag materialization disabled on the
/// current thread. Batch executors that already fan requests out over
/// worker threads wrap per-request evaluation in this, so a large
/// database cannot trigger a second layer of thread spawning underneath
/// an already-saturated pool (threads × bags oversubscription).
pub fn with_sequential_bags<R>(f: impl FnOnce() -> R) -> R {
    SEQUENTIAL_BAGS.with(|flag| {
        let prev = flag.replace(true);
        let out = f();
        flag.set(prev);
        out
    })
}

/// Total bag-tree rows below which the per-level tree passes stay
/// sequential: scoped-thread setup costs more than the semijoin probes
/// it would parallelize.
const PARALLEL_PASS_THRESHOLD: usize = 1 << 15;

/// Sparsity of one overlay tree pass: how many bag nodes the pass
/// actually rewrote, out of the tree's total. Warm prepared runs on
/// join-consistent data rewrite **zero** nodes (every semijoin keeps
/// every row), which is what makes copy-free re-execution pay.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PassStats {
    /// Nodes the pass rewrote (copied + filtered).
    pub rewritten: usize,
    /// Nodes in the bag tree.
    pub total: usize,
}

/// A copy-on-rewrite view over a shared [`MaterializedBags`] tree: reads
/// fall through to the base materialization; a pass that filters a node
/// writes the filtered relation into a sparse local layer and leaves the
/// base untouched. Tree passes built on this copy only the nodes they
/// actually rewrite — the Boolean pass touches non-leaf parents at most
/// (none at all when nothing drops), the counting DP touches merge
/// targets — instead of cloning the whole tree per run.
#[derive(Debug)]
pub struct BagOverlay<'a> {
    base: &'a MaterializedBags,
    /// Sparse rewrite layer, indexed by node.
    local: Vec<Option<Arc<FlatRelation>>>,
}

impl<'a> BagOverlay<'a> {
    /// An overlay with an empty rewrite layer: every read sees `base`.
    pub fn new(base: &'a MaterializedBags) -> BagOverlay<'a> {
        BagOverlay {
            base,
            local: vec![None; base.relations.len()],
        }
    }

    /// The current relation of node `u` (rewritten if the pass touched
    /// it, the shared base otherwise).
    pub fn rel(&self, u: usize) -> &FlatRelation {
        match &self.local[u] {
            Some(r) => r,
            None => &self.base.relations[u],
        }
    }

    /// Shared handle on node `u`'s current relation: an `Arc` bump, never
    /// a buffer copy (enumerators keep untouched bags alive this way).
    pub fn rel_shared(&self, u: usize) -> Arc<FlatRelation> {
        match &self.local[u] {
            Some(r) => Arc::clone(r),
            None => Arc::clone(&self.base.relations[u]),
        }
    }

    /// Has the running pass rewritten node `u`? (Cached base-side probe
    /// tables are only valid while this is `false`.)
    pub fn is_rewritten(&self, u: usize) -> bool {
        self.local[u].is_some()
    }

    /// Install `rel` as node `u`'s rewritten relation.
    pub fn set(&mut self, u: usize, rel: FlatRelation) {
        self.local[u] = Some(Arc::new(rel));
    }

    /// Rewrite sparsity so far.
    pub fn stats(&self) -> PassStats {
        PassStats {
            rewritten: self.local.iter().filter(|l| l.is_some()).count(),
            total: self.local.len(),
        }
    }
}

/// The materialized bag tree of a `(query, database, GHD)` triple: one
/// relation per bag (the `λ` cover joined with the bag's assigned
/// atoms), rooted and ordered for tree passes.
///
/// This is the **shared preprocessing** of every GHD-guided evaluator —
/// the `O(‖D‖^width)` part. Build it once with
/// [`MaterializedBags::build`] and run as many passes as needed:
/// [`MaterializedBags::bcq`], [`MaterializedBags::count`], and
/// [`MaterializedBags::enumerator`] run through a [`BagOverlay`] — reads
/// fall through to the shared, immutable materialization and only the
/// nodes a pass actually rewrites are copied, so warm re-execution (and
/// any number of concurrent cursors) shares one bag tree with **zero
/// per-run cloning**. Each node also lazily caches a probe table over
/// its base relation (valid while a pass leaves the node unrewritten),
/// so a warm run on join-consistent data is pure probing: no hash-table
/// builds, no copies. On trees wide and large enough to pay for thread
/// setup, the bottom-up semijoin pass and the counting DP fan out per
/// tree level over the scoped-thread pool (nodes at one depth never
/// read each other). The one-shot [`bcq_via_ghd`] / [`count_via_ghd`] /
/// [`enumerate_via_ghd`] wrappers build and consume in place instead.
///
/// ```
/// use cqd2_cq::eval::MaterializedBags;
/// use cqd2_cq::{ConjunctiveQuery, Database};
/// use cqd2_decomp::widths::ghw_decomposition;
///
/// let q = ConjunctiveQuery::parse(&[("R", &["?x", "?y"]), ("S", &["?y", "?z"])]);
/// let mut db = Database::new();
/// db.insert_all("R", &[vec![1, 2]]);
/// db.insert_all("S", &[vec![2, 3], vec![2, 4]]);
/// let ghd = ghw_decomposition(&q.hypergraph()).expect("small instance");
///
/// // Pay the O(‖D‖^width) preprocessing once…
/// let bags = MaterializedBags::build(&q, &db, &ghd)?;
/// // …then run as many copy-free tree passes as needed.
/// assert!(bags.bcq());
/// assert_eq!(bags.count(), 2);
/// assert_eq!(bags.enumerator().count(), 2);
/// # Ok::<(), cqd2_cq::eval::EvalError>(())
/// ```
#[derive(Debug, Clone)]
pub struct MaterializedBags {
    /// Per-bag relations, `Arc`-shared so overlays and enumerators can
    /// hold untouched bags without copying buffers.
    relations: Vec<Arc<FlatRelation>>,
    children: Vec<Vec<usize>>,
    /// Parent of each node (`usize::MAX` at the root).
    parents: Vec<usize>,
    post_order: Vec<usize>,
    /// Nodes grouped by depth (`levels[0]` = `[root]`). Nodes within a
    /// level are pairwise non-adjacent in the tree, so per-level pass
    /// tasks touch disjoint state.
    levels: Vec<Vec<usize>>,
    /// For each non-root node `u`: the columns of `relations[u]` whose
    /// variables also occur in the parent bag — the semijoin key, child
    /// side. Resolved once at build; every pass rewrite preserves column
    /// layout, so the positions stay valid all tree passes long.
    up_key: Vec<Vec<usize>>,
    /// The matching key columns in the parent's relation (same variable
    /// order as `up_key`). Empty at the root.
    parent_key: Vec<Vec<usize>>,
    /// Lazily-built probe table per node, over the **base** relation,
    /// keyed on `up_key` (what the parent's bottom-up semijoin probes).
    /// Sound to reuse across runs because overlays never mutate the
    /// base; passes consult it only while the node is unrewritten.
    /// `Arc`'d so [`MaterializedBags::refresh`] can share a clean node's
    /// filled table with the refreshed tree instead of rebuilding it.
    base_tables: Vec<OnceLock<Arc<KeyTable>>>,
    /// Lazily-built per-key multiplicity table per **leaf** node (the
    /// counting DP's child aggregation with all-ones counts — leaves are
    /// never rewritten by the DP, so this too survives across runs).
    leaf_aggs: Vec<OnceLock<Arc<AggTable>>>,
    /// Lazily-built probe table per non-root node, over the **parent's**
    /// base relation, keyed on `parent_key` (what the enumerator's
    /// top-down semijoin probes when the parent is unrewritten).
    down_tables: Vec<OnceLock<Arc<KeyTable>>>,
    /// Per-bag materialization recipe, retained so
    /// [`MaterializedBags::refresh`] can re-run exactly the build-time
    /// join/project sequence for a dirty bag against a new database.
    recipes: Vec<BagRecipe>,
    root: usize,
    /// `q.num_vars()` at build time (answer tuple width).
    num_vars: usize,
}

/// What it takes to re-materialize one bag: the atom indices joined as
/// the `λ` cover, the bag's variables (the projection between cover and
/// assigned joins), and the atoms assigned to the bag. All three are
/// data-independent — re-running the recipe against any database yields
/// a relation with the **same column layout**, which is what keeps the
/// tree's resolved semijoin keys (`up_key` / `parent_key`) valid across
/// a refresh.
#[derive(Debug, Clone)]
struct BagRecipe {
    /// Atom indices of the cover's edge representatives, in cover order.
    cover_atoms: Vec<usize>,
    /// The bag's variables, in bag order.
    bag_vars: Vec<Var>,
    /// Atom indices assigned to this bag, in assignment order.
    assigned_atoms: Vec<usize>,
}

impl BagRecipe {
    /// Every atom index this bag's materialization reads.
    fn atoms(&self) -> impl Iterator<Item = usize> + '_ {
        self.cover_atoms
            .iter()
            .chain(&self.assigned_atoms)
            .copied()
    }
}

/// Run one bag's recipe: join the cover representatives, project to the
/// bag's variables, then join the assigned atoms. `bound` resolves an
/// atom index to its bound relation.
fn materialize_bag<'a>(
    recipe: &BagRecipe,
    bound: impl Fn(usize) -> &'a FlatRelation,
) -> FlatRelation {
    let mut rel = FlatRelation::unit();
    for &ai in &recipe.cover_atoms {
        rel = rel.join(bound(ai));
    }
    // Project to bag variables (cover may reach outside the bag).
    let keep: Vec<Var> = recipe
        .bag_vars
        .iter()
        .copied()
        .filter(|v| rel.vars().contains(v))
        .collect();
    rel = rel.project(&keep);
    for &ai in &recipe.assigned_atoms {
        rel = rel.join(bound(ai));
    }
    rel
}

impl MaterializedBags {
    /// Materialize the bag tree of `q` against `db` along `ghd`
    /// (validated against `q.hypergraph()` first).
    pub fn build(
        q: &ConjunctiveQuery,
        db: &Database,
        ghd: &Ghd,
    ) -> Result<MaterializedBags, EvalError> {
        build_bag_tree(q, db, ghd)
    }

    /// Total rows across all materialized bag relations (the memory the
    /// handle pins).
    pub fn total_rows(&self) -> usize {
        self.relations.iter().map(|r| r.len()).sum()
    }

    /// Number of bag nodes in the tree.
    pub fn num_bags(&self) -> usize {
        self.relations.len()
    }

    /// A detached deep copy: fresh relation buffers, empty probe-table
    /// caches. This is the **clone-based execution baseline** — exactly
    /// the per-run cost the overlay passes eliminate — kept public so
    /// benches and differential tests can measure and compare against
    /// it (`bags.deep_clone().into_bcq()` etc.).
    pub fn deep_clone(&self) -> MaterializedBags {
        MaterializedBags {
            relations: self
                .relations
                .iter()
                .map(|r| Arc::new(FlatRelation::clone(r)))
                .collect(),
            children: self.children.clone(),
            parents: self.parents.clone(),
            post_order: self.post_order.clone(),
            levels: self.levels.clone(),
            up_key: self.up_key.clone(),
            parent_key: self.parent_key.clone(),
            base_tables: (0..self.relations.len()).map(|_| OnceLock::new()).collect(),
            leaf_aggs: (0..self.relations.len()).map(|_| OnceLock::new()).collect(),
            down_tables: (0..self.relations.len()).map(|_| OnceLock::new()).collect(),
            recipes: self.recipes.clone(),
            root: self.root,
            num_vars: self.num_vars,
        }
    }

    /// **Warm maintenance** after a delta: rebuild only the bags whose
    /// materialization reads a relation in `dirty`, sharing every clean
    /// bag's relation (an `Arc` bump, no buffer copy) *and* its filled
    /// probe-table caches with `self`. `q` must be the query this tree
    /// was built for and `db` the post-delta database; `dirty` holds the
    /// names of the relations the delta touched.
    ///
    /// Dirty bags re-run their retained build recipe, which reproduces
    /// the build-time column layout exactly, so the tree shape and the
    /// resolved semijoin keys carry over unchanged. Cache carry-over
    /// follows each table's validity domain: a node's up-probe table and
    /// leaf aggregation move over iff the node itself is clean; a node's
    /// down-probe table (built over its *parent's* relation) moves over
    /// iff the parent is clean.
    ///
    /// Returns the refreshed tree plus the maintenance sparsity: how
    /// many bags were re-materialized out of the total. `rewritten == 0`
    /// means the delta did not intersect this query at all and the
    /// refreshed tree is a pure share of `self`.
    pub fn refresh(
        &self,
        q: &ConjunctiveQuery,
        db: &Database,
        dirty: &[String],
    ) -> (MaterializedBags, PassStats) {
        let n = self.relations.len();
        let is_dirty_rel = |name: &str| dirty.iter().any(|d| d == name);
        let dirty_bag: Vec<bool> = self
            .recipes
            .iter()
            .map(|r| r.atoms().any(|ai| is_dirty_rel(&q.atoms[ai].relation)))
            .collect();
        // Re-bind only the atoms the dirty bags actually read; clean
        // relations are never scanned.
        let mut bound: Vec<Option<FlatRelation>> = (0..q.atoms.len()).map(|_| None).collect();
        for (u, recipe) in self.recipes.iter().enumerate() {
            if !dirty_bag[u] {
                continue;
            }
            for ai in recipe.atoms() {
                if bound[ai].is_none() {
                    bound[ai] = Some(FlatRelation::bind(&q.atoms[ai], db));
                }
            }
        }
        let dirty_nodes: Vec<usize> = (0..n).filter(|&u| dirty_bag[u]).collect();
        let bound_tuples: usize = bound.iter().flatten().map(FlatRelation::len).sum();
        let parallel = dirty_nodes.len() > 1
            && bound_tuples >= PARALLEL_BAG_THRESHOLD
            && !SEQUENTIAL_BAGS.with(std::cell::Cell::get);
        let workers = if parallel {
            std::thread::available_parallelism().map_or(1, |p| p.get())
        } else {
            1
        };
        let remat: Vec<FlatRelation> =
            crate::par::scoped_map(dirty_nodes.len(), workers, |i| {
                materialize_bag(&self.recipes[dirty_nodes[i]], |ai| {
                    bound[ai]
                        .as_ref()
                        // cqd2-lint: allow(panic-in-hot-path, reason = "every atom a dirty bag reads was bound in the loop above")
                        .expect("dirty bag atom bound")
                })
            });
        let mut relations: Vec<Arc<FlatRelation>> =
            self.relations.iter().map(Arc::clone).collect();
        for (i, rel) in remat.into_iter().enumerate() {
            let u = dirty_nodes[i];
            debug_assert_eq!(
                rel.vars(),
                self.relations[u].vars(),
                "recipe re-run must reproduce the bag's column layout"
            );
            relations[u] = Arc::new(rel);
        }
        // Carry over the caches whose validity domain stayed clean.
        let seed_key = |src: &OnceLock<Arc<KeyTable>>, valid: bool| {
            let lock = OnceLock::new();
            if valid {
                if let Some(t) = src.get() {
                    let _ = lock.set(Arc::clone(t));
                }
            }
            lock
        };
        let base_tables: Vec<OnceLock<Arc<KeyTable>>> = (0..n)
            .map(|c| seed_key(&self.base_tables[c], !dirty_bag[c]))
            .collect();
        let down_tables: Vec<OnceLock<Arc<KeyTable>>> = (0..n)
            .map(|c| {
                let p = self.parents[c];
                seed_key(&self.down_tables[c], p != usize::MAX && !dirty_bag[p])
            })
            .collect();
        let leaf_aggs: Vec<OnceLock<Arc<AggTable>>> = (0..n)
            .map(|c| {
                let lock = OnceLock::new();
                if !dirty_bag[c] {
                    if let Some(t) = self.leaf_aggs[c].get() {
                        let _ = lock.set(Arc::clone(t));
                    }
                }
                lock
            })
            .collect();
        let stats = PassStats {
            rewritten: dirty_nodes.len(),
            total: n,
        };
        (
            MaterializedBags {
                relations,
                children: self.children.clone(),
                parents: self.parents.clone(),
                post_order: self.post_order.clone(),
                levels: self.levels.clone(),
                up_key: self.up_key.clone(),
                parent_key: self.parent_key.clone(),
                base_tables,
                leaf_aggs,
                down_tables,
                recipes: self.recipes.clone(),
                root: self.root,
                num_vars: self.num_vars,
            },
            stats,
        )
    }

    /// `Arc` identity of bag `u`'s materialized relation — the witness
    /// differential tests use to assert that a refresh shared (rather
    /// than rebuilt) a clean bag.
    pub fn bag_arc(&self, u: usize) -> &Arc<FlatRelation> {
        &self.relations[u]
    }

    /// Decide `q(D) ≠ ∅` with an overlay Boolean pass (Prop. 2.2
    /// bottom-up semijoins; copies only rewritten nodes).
    pub fn bcq(&self) -> bool {
        self.bcq_with_stats().0
    }

    /// [`MaterializedBags::bcq`] plus the pass's rewrite sparsity.
    pub fn bcq_with_stats(&self) -> (bool, PassStats) {
        let mut ov = BagOverlay::new(self);
        let ok = self.reduce_bottom_up(&mut ov);
        (ok && !ov.rel(self.root).is_empty(), ov.stats())
    }

    /// Count `|q(D)|` with an overlay counting DP (Prop. 4.14
    /// junction-tree DP; copies only merge targets).
    pub fn count(&self) -> u128 {
        self.count_with_stats().0
    }

    /// [`MaterializedBags::count`] plus the pass's rewrite sparsity.
    pub fn count_with_stats(&self) -> (u128, PassStats) {
        let n = self.relations.len();
        let mut ov = BagOverlay::new(self);
        // Per-row subtree extension counts; `None` = all ones (leaves
        // never allocate one).
        let mut counts: Vec<Option<Vec<u128>>> = vec![None; n];
        let workers = self.pass_workers();
        for level in self.levels.iter().rev() {
            let work: Vec<usize> = level
                .iter()
                .copied()
                .filter(|&u| !self.children[u].is_empty())
                .collect();
            if workers > 1 && work.len() > 1 {
                let results = crate::par::scoped_map(work.len(), workers, |i| {
                    self.count_node(&ov, &counts, work[i])
                });
                for (&u, (rel, cnt)) in work.iter().zip(results) {
                    ov.set(u, rel);
                    counts[u] = Some(cnt);
                }
            } else {
                for &u in &work {
                    let (rel, cnt) = self.count_node(&ov, &counts, u);
                    ov.set(u, rel);
                    counts[u] = Some(cnt);
                }
            }
        }
        let total = match &counts[self.root] {
            Some(c) => c.iter().sum(),
            // A root with no children: every root row is one answer.
            None => ov.rel(self.root).len() as u128,
        };
        (total, ov.stats())
    }

    /// Open a streaming answer enumerator through an overlay reduction
    /// (semijoin-reduce both ways, then constant-delay enumeration).
    /// Untouched bags are shared with the base tree by `Arc`, so any
    /// number of concurrent cursors pin one materialization.
    pub fn enumerator(&self) -> GhdEnumerator {
        self.enumerator_with_stats().0
    }

    /// [`MaterializedBags::enumerator`] plus the reduction's rewrite
    /// sparsity (both passes combined).
    pub fn enumerator_with_stats(&self) -> (GhdEnumerator, PassStats) {
        if self.relations.is_empty() {
            return (GhdEnumerator::empty(), PassStats::default());
        }
        let mut ov = BagOverlay::new(self);
        if !self.reduce_bottom_up(&mut ov) {
            return (GhdEnumerator::empty(), ov.stats());
        }
        // Top-down pass (parents filter children): afterwards the tree
        // is globally consistent — every surviving row extends to a full
        // answer. Unrewritten parents probe through the cached
        // parent-side table; rewritten ones build a fresh one.
        for level in &self.levels {
            for &u in level {
                for &c in &self.children[u] {
                    let filtered = if ov.is_rewritten(u) {
                        let table = KeyTable::build(ov.rel(u), &self.parent_key[c]);
                        ov.rel(c).semijoin_filter_with(&table, &self.up_key[c])
                    } else {
                        let table = self.down_tables[c].get_or_init(|| {
                            Arc::new(KeyTable::build(&self.relations[u], &self.parent_key[c]))
                        });
                        ov.rel(c).semijoin_filter_with(table, &self.up_key[c])
                    };
                    if let Some(f) = filtered {
                        ov.set(c, f);
                    }
                }
            }
        }
        let stats = ov.stats();
        let rels: Vec<Arc<FlatRelation>> = (0..self.relations.len())
            .map(|u| ov.rel_shared(u))
            .collect();
        (
            build_enumerator(
                rels,
                &self.children,
                &self.parents,
                self.root,
                self.num_vars,
            ),
            stats,
        )
    }

    /// Worker count for per-level tree passes: parallel only when some
    /// level has two or more nodes with children (otherwise levels are
    /// single-task and threads pure overhead), the tree is big enough to
    /// amortize thread setup, and the caller did not opt out via
    /// [`with_sequential_bags`].
    fn pass_workers(&self) -> usize {
        let wide = self
            .levels
            .iter()
            .any(|l| l.iter().filter(|&&u| !self.children[u].is_empty()).count() > 1);
        if !wide
            || self.total_rows() < PARALLEL_PASS_THRESHOLD
            || SEQUENTIAL_BAGS.with(std::cell::Cell::get)
        {
            1
        } else {
            std::thread::available_parallelism().map_or(1, |p| p.get())
        }
    }

    /// Bottom-up Yannakakis pass over the overlay, per level from the
    /// deepest up. Returns `false` as soon as any bag is (or becomes)
    /// empty — then `q(D) = ∅`.
    fn reduce_bottom_up(&self, ov: &mut BagOverlay<'_>) -> bool {
        if self.relations.iter().any(|r| r.is_empty()) {
            return false;
        }
        let workers = self.pass_workers();
        for level in self.levels.iter().rev() {
            let work: Vec<usize> = level
                .iter()
                .copied()
                .filter(|&u| !self.children[u].is_empty())
                .collect();
            if workers > 1 && work.len() > 1 {
                let results =
                    crate::par::scoped_map(work.len(), workers, |i| self.reduce_node(ov, work[i]));
                let mut emptied = false;
                for (&u, res) in work.iter().zip(results) {
                    if let Some(rel) = res {
                        emptied |= rel.is_empty();
                        ov.set(u, rel);
                    }
                }
                if emptied {
                    return false;
                }
            } else {
                for &u in &work {
                    if let Some(rel) = self.reduce_node(ov, u) {
                        let emptied = rel.is_empty();
                        ov.set(u, rel);
                        if emptied {
                            return false;
                        }
                    }
                }
            }
        }
        true
    }

    /// Semijoin node `u` against each of its children through the
    /// overlay. `None` = every row survived every child (node unchanged,
    /// nothing written). Unrewritten children probe through the cached
    /// base-side table; rewritten ones build a fresh one.
    fn reduce_node(&self, ov: &BagOverlay<'_>, u: usize) -> Option<FlatRelation> {
        let mut cur: Option<FlatRelation> = None;
        for &c in &self.children[u] {
            let parent = match &cur {
                Some(r) => r,
                None => ov.rel(u),
            };
            let filtered = if ov.is_rewritten(c) {
                let table = KeyTable::build(ov.rel(c), &self.up_key[c]);
                parent.semijoin_filter_with(&table, &self.parent_key[c])
            } else {
                let table = self.base_tables[c]
                    .get_or_init(|| Arc::new(KeyTable::build(&self.relations[c], &self.up_key[c])));
                parent.semijoin_filter_with(table, &self.parent_key[c])
            };
            if let Some(f) = filtered {
                let emptied = f.is_empty();
                cur = Some(f);
                if emptied {
                    break;
                }
            }
        }
        cur
    }

    /// One counting-DP merge: fold node `u`'s children into `(filtered
    /// relation, per-row counts)`. Children's aggregation tables come
    /// from the per-leaf cache when possible (leaves are never rewritten
    /// and their counts stay all-ones).
    fn count_node(
        &self,
        ov: &BagOverlay<'_>,
        counts: &[Option<Vec<u128>>],
        u: usize,
    ) -> (FlatRelation, Vec<u128>) {
        let mut rel: Option<FlatRelation> = None;
        let mut cnt: Option<Vec<u128>> = None;
        for &c in &self.children[u] {
            let parent = match &rel {
                Some(r) => r,
                None => ov.rel(u),
            };
            // `u` is merged here for the first time, so its incoming
            // counts are all-ones until `cnt` is populated.
            let fresh;
            let agg: &AggTable = if self.children[c].is_empty() {
                debug_assert!(!ov.is_rewritten(c) && counts[c].is_none());
                self.leaf_aggs[c]
                    .get_or_init(|| Arc::new(AggTable::build(&self.relations[c], &self.up_key[c], None)))
            } else {
                fresh = AggTable::build(ov.rel(c), &self.up_key[c], counts[c].as_deref());
                &fresh
            };
            let arity = parent.arity();
            let key_cols = &self.parent_key[c];
            let mut scratch = vec![0u64; key_cols.len()];
            let mut data: Vec<u64> = Vec::with_capacity(parent.len() * arity);
            let mut kept: Vec<u128> = Vec::with_capacity(parent.len());
            for (i, t) in parent.iter().enumerate() {
                for (s, &p) in scratch.iter_mut().zip(key_cols) {
                    *s = t[p];
                }
                if let Some(sum) = agg.get(&scratch) {
                    data.extend_from_slice(t);
                    kept.push(cnt.as_ref().map_or(1, |v| v[i]) * sum);
                }
            }
            let rows = kept.len();
            rel = Some(FlatRelation::from_parts(parent.vars().to_vec(), rows, data));
            cnt = Some(kept);
        }
        (
            // cqd2-lint: allow(panic-in-hot-path, reason = "the non-leaf arm iterates at least one child, which sets both slots")
            rel.expect("count_node called with children"),
            // cqd2-lint: allow(panic-in-hot-path, reason = "set together with rel above")
            cnt.expect("count_node called with children"),
        )
    }
}

fn build_bag_tree(
    q: &ConjunctiveQuery,
    db: &Database,
    ghd: &Ghd,
) -> Result<MaterializedBags, EvalError> {
    let h = q.hypergraph();
    ghd.validate(&h).map_err(EvalError::InvalidGhd)?;
    let bound: Vec<FlatRelation> = q.atoms.iter().map(|a| FlatRelation::bind(a, db)).collect();
    // Representative atom for each hypergraph edge (same variable set),
    // via the shared sorted-varset map on the query (one hash probe per
    // edge instead of re-sorting every atom's variable list per edge).
    let edge_rep: Vec<usize> = q
        .edge_representatives(&h)
        .into_iter()
        .enumerate()
        .map(|(i, rep)| rep.ok_or(EvalError::EdgeWithoutAtom { edge: i }))
        .collect::<Result<_, EvalError>>()?;
    // Assign every atom to one node whose bag contains its variables.
    let bag_contains = |u: usize, vars: &[Var]| {
        vars.iter()
            .all(|v| ghd.td.bags[u].binary_search(&VertexId(v.0)).is_ok())
    };
    let mut assigned: Vec<Vec<usize>> = vec![Vec::new(); ghd.td.bags.len()];
    for (ai, atom) in q.atoms.iter().enumerate() {
        let vars = atom.vars();
        let u = (0..ghd.td.bags.len())
            .find(|&u| bag_contains(u, &vars))
            .ok_or(EvalError::AtomFitsNoBag { atom: ai })?;
        assigned[u].push(ai);
    }
    // Materialize each bag: join cover representatives, project to bag,
    // then join all assigned atoms. Bags depend only on the shared
    // `bound` relations, never on each other, so on databases big enough
    // to amortize thread setup the bags materialize concurrently. The
    // recipe (which atoms, joined in which order, projected to which
    // variables) is retained on the handle so `refresh` can re-run it
    // per dirty bag after a delta.
    let n = ghd.td.bags.len();
    let recipes: Vec<BagRecipe> = (0..n)
        .map(|u| BagRecipe {
            cover_atoms: ghd.covers[u].iter().map(|e| edge_rep[e.idx()]).collect(),
            bag_vars: ghd.td.bags[u].iter().map(|v| Var(v.0)).collect(),
            assigned_atoms: assigned[u].clone(),
        })
        .collect();
    let materialize = |u: usize| materialize_bag(&recipes[u], |ai| &bound[ai]);
    // Gate parallelism on the tuples the *query* actually touches (the
    // bound atom relations), not the whole database — a big unrelated
    // relation must not trigger thread spawns for a microsecond join.
    let bound_tuples: usize = bound.iter().map(FlatRelation::len).sum();
    let parallel = n > 1
        && bound_tuples >= PARALLEL_BAG_THRESHOLD
        && !SEQUENTIAL_BAGS.with(std::cell::Cell::get);
    let workers = if parallel {
        std::thread::available_parallelism().map_or(1, |p| p.get())
    } else {
        1
    };
    let relations: Vec<FlatRelation> = crate::par::scoped_map(n, workers, materialize);
    // Root the tree at node 0 and compute a post-order.
    let adj = ghd.td.adjacency();
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut parents: Vec<usize> = vec![usize::MAX; n];
    let mut post_order = Vec::with_capacity(n);
    let mut visited = vec![false; n];
    // Iterative DFS computing children, parents, and post-order.
    let root = 0usize;
    let mut stack = vec![(root, usize::MAX, false)];
    while let Some((u, parent, processed)) = stack.pop() {
        if processed {
            post_order.push(u);
            continue;
        }
        if visited[u] {
            continue;
        }
        visited[u] = true;
        parents[u] = parent;
        stack.push((u, parent, true));
        for &w in &adj[u] {
            if w != parent && !visited[w] {
                children[u].push(w);
                stack.push((w, u, false));
            }
        }
    }
    // Depth levels (root = level 0) for the per-level parallel passes:
    // nodes within one level are pairwise non-adjacent in the tree.
    let mut levels: Vec<Vec<usize>> = vec![vec![root]];
    loop {
        let next: Vec<usize> = levels
            .last()
            // cqd2-lint: allow(panic-in-hot-path, reason = "levels is seeded with vec![root] before the loop")
            .expect("at least the root level")
            .iter()
            .flat_map(|&u| children[u].iter().copied())
            .collect();
        if next.is_empty() {
            break;
        }
        levels.push(next);
    }
    // Semijoin key columns along every tree edge, resolved once: the
    // variables a child's relation shares with its parent's relation
    // (in the child's column order), as positions on both sides. Pass
    // rewrites preserve column layouts, so these stay valid for the
    // lifetime of the handle.
    let mut up_key: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut parent_key: Vec<Vec<usize>> = vec![Vec::new(); n];
    for u in 0..n {
        let p = parents[u];
        if p == usize::MAX {
            continue;
        }
        let (child_rel, parent_rel) = (&relations[u], &relations[p]);
        for (c, v) in child_rel.vars().iter().enumerate() {
            if let Some(pc) = parent_rel.vars().iter().position(|w| w == v) {
                up_key[u].push(c);
                parent_key[u].push(pc);
            }
        }
    }
    Ok(MaterializedBags {
        relations: relations.into_iter().map(Arc::new).collect(),
        children,
        parents,
        post_order,
        levels,
        up_key,
        parent_key,
        base_tables: (0..n).map(|_| OnceLock::new()).collect(),
        leaf_aggs: (0..n).map(|_| OnceLock::new()).collect(),
        down_tables: (0..n).map(|_| OnceLock::new()).collect(),
        recipes,
        root,
        num_vars: q.num_vars(),
    })
}

/// Decide `q(D) ≠ ∅` using a GHD of the query's hypergraph
/// (Prop. 2.2: polynomial for bounded-width GHDs).
pub fn bcq_via_ghd(q: &ConjunctiveQuery, db: &Database, ghd: &Ghd) -> Result<bool, EvalError> {
    Ok(build_bag_tree(q, db, ghd)?.into_bcq())
}

impl MaterializedBags {
    /// Consuming Boolean pass (bottom-up semijoins, early-out on
    /// empty): like [`MaterializedBags::bcq`] but rewrites the tree in
    /// place, sequentially — the one-shot and differential-baseline
    /// path. Disjoint field borrows keep the hot loop allocation-free.
    pub fn into_bcq(mut self) -> bool {
        let MaterializedBags {
            relations,
            children,
            post_order,
            root,
            ..
        } = &mut self;
        for &u in post_order.iter() {
            if relations[u].is_empty() {
                return false;
            }
            for &c in &children[u] {
                let filtered = relations[u].semijoin(&relations[c]);
                relations[u] = Arc::new(filtered);
                if relations[u].is_empty() {
                    return false;
                }
            }
        }
        !relations[*root].is_empty()
    }
}

/// Count `|q(D)|` for a full CQ using the junction-tree DP over a GHD
/// (Prop. 4.14: polynomial for bounded-width GHDs).
///
/// Subtree extension counts live in a dense `Vec<u128>` aligned with
/// each bag's row order; merging a child aggregates its counts by packed
/// shared-variable key and rewrites the parent in one pass (rows with no
/// child match drop out, exactly the Yannakakis filter).
pub fn count_via_ghd(q: &ConjunctiveQuery, db: &Database, ghd: &Ghd) -> Result<u128, EvalError> {
    Ok(build_bag_tree(q, db, ghd)?.into_count())
}

impl MaterializedBags {
    /// Consuming counting DP: like [`MaterializedBags::count`] but
    /// rewrites the tree in place, sequentially — the one-shot and
    /// differential-baseline path.
    pub fn into_count(mut self) -> u128 {
        let MaterializedBags {
            relations,
            children,
            post_order,
            root,
            ..
        } = &mut self;
        let mut counts: Vec<Vec<u128>> = relations.iter().map(|r| vec![1u128; r.len()]).collect();
        for &u in post_order.iter() {
            for &c in &children[u] {
                let (new_rel, new_counts) = {
                    let parent = &relations[u];
                    let child = &relations[c];
                    // Shared variables between bags u and c, with key
                    // positions resolved once.
                    let shared: Vec<Var> = parent
                        .vars()
                        .iter()
                        .copied()
                        .filter(|v| child.vars().contains(v))
                        .collect();
                    let c_pos: Vec<usize> = shared
                        .iter()
                        // cqd2-lint: allow(panic-in-hot-path, reason = "shared was filtered to variables present in child.vars()")
                        .map(|v| child.vars().iter().position(|w| w == v).expect("shared"))
                        .collect();
                    let u_pos: Vec<usize> = shared
                        .iter()
                        // cqd2-lint: allow(panic-in-hot-path, reason = "shared is drawn from parent.vars(), so position always finds it")
                        .map(|v| parent.vars().iter().position(|w| w == v).expect("shared"))
                        .collect();
                    let arity = parent.arity();
                    let mut data: Vec<u64> = Vec::with_capacity(parent.len() * arity);
                    let mut kept: Vec<u128> = Vec::with_capacity(parent.len());
                    if shared.len() == 1 {
                        // Single-column fast path: aggregate and probe on the
                        // raw value.
                        let (cp, up) = (c_pos[0], u_pos[0]);
                        let mut agg: HashMap<u64, u128> = HashMap::with_capacity(child.len());
                        for (i, t) in child.iter().enumerate() {
                            *agg.entry(t[cp]).or_insert(0) += counts[c][i];
                        }
                        for (i, t) in parent.iter().enumerate() {
                            if let Some(&s) = agg.get(&t[up]) {
                                data.extend_from_slice(t);
                                kept.push(counts[u][i] * s);
                            }
                        }
                    } else {
                        // General path: packed multi-column keys (also covers
                        // vacuous sharing, where every key is empty).
                        let mut agg: HashMap<Box<[u64]>, u128> =
                            HashMap::with_capacity(child.len());
                        let mut scratch: Vec<u64> = Vec::with_capacity(shared.len());
                        for (i, t) in child.iter().enumerate() {
                            scratch.clear();
                            scratch.extend(c_pos.iter().map(|&p| t[p]));
                            match agg.get_mut(scratch.as_slice()) {
                                Some(sum) => *sum += counts[c][i],
                                None => {
                                    agg.insert(scratch.as_slice().into(), counts[c][i]);
                                }
                            }
                        }
                        for (i, t) in parent.iter().enumerate() {
                            scratch.clear();
                            scratch.extend(u_pos.iter().map(|&p| t[p]));
                            if let Some(&s) = agg.get(scratch.as_slice()) {
                                data.extend_from_slice(t);
                                kept.push(counts[u][i] * s);
                            }
                        }
                    }
                    let rows = kept.len();
                    (
                        FlatRelation::from_parts(parent.vars().to_vec(), rows, data),
                        kept,
                    )
                };
                relations[u] = Arc::new(new_rel);
                counts[u] = new_counts;
            }
        }
        counts[*root].iter().sum()
    }
}

// ---------------------------------------------------------------------
// GHD-guided enumeration (preprocessing + constant-delay streaming).
// ---------------------------------------------------------------------

/// One bag of the reduced decomposition tree, prepared for top-down
/// enumeration (pre-order position).
#[derive(Debug)]
struct EnumLevel {
    /// The fully semijoin-reduced bag relation. `Arc`-shared: bags the
    /// reduction left untouched point straight into the prepared
    /// materialization, so concurrent cursors pin one tree.
    rel: Arc<FlatRelation>,
    /// Assignment slot (`Var` id) of each of `rel`'s columns.
    write: Vec<usize>,
    /// Assignment slots of the variables shared with the parent bag —
    /// the probe key. Empty at the root (and for parent-disjoint bags),
    /// where the index holds every row under the empty key.
    key_slots: Vec<usize>,
    /// Row ids grouped by packed parent-key value.
    index: HashMap<Box<[u64]>, Vec<u32>>,
}

/// A streaming answer enumerator over a semijoin-reduced GHD bag tree
/// (created by [`enumerate_via_ghd`]).
///
/// After the two reduction passes every bag row extends to at least one
/// full answer, so the top-down walk never backtracks out of a dead end:
/// each [`Iterator::next`] call does `O(tree size)` hash probes and row
/// copies, independent of the database — the constant-delay regime of
/// Durand & Grandjean / Carmeli & Kröll, with the `O(‖D‖^k)` work
/// confined to the preprocessing phase.
///
/// Answers are full assignments in `Var` id order (the same shape
/// [`enumerate_naive`] produces) but **not** in sorted order; sort the
/// collected prefix if a canonical order is needed.
#[derive(Debug)]
pub struct GhdEnumerator {
    /// Bags in pre-order (parents before children).
    levels: Vec<EnumLevel>,
    /// Current answer under construction, indexed by `Var` id.
    assignment: Vec<u64>,
    /// Current match-list position per level.
    choice: Vec<usize>,
    /// Scratch buffer for packed probe keys.
    scratch: Vec<u64>,
    started: bool,
    done: bool,
}

impl GhdEnumerator {
    /// An enumerator that yields nothing (empty result set).
    fn empty() -> GhdEnumerator {
        GhdEnumerator {
            levels: Vec::new(),
            assignment: Vec::new(),
            choice: Vec::new(),
            scratch: Vec::new(),
            started: false,
            done: true,
        }
    }

    /// Move level `d` to match-list position `i`, binding the chosen row
    /// into the assignment, then settle all deeper levels on their first
    /// matches. Backtracks on exhaustion; `false` means the walk is done.
    fn search(&mut self, mut d: usize, mut i: usize) -> bool {
        loop {
            self.scratch.clear();
            for &slot in &self.levels[d].key_slots {
                self.scratch.push(self.assignment[slot]);
            }
            let list: &[u32] = self.levels[d]
                .index
                .get(self.scratch.as_slice())
                .map_or(&[], Vec::as_slice);
            if i < list.len() {
                let row = self.levels[d].rel.row(list[i] as usize);
                for (c, &slot) in self.levels[d].write.iter().enumerate() {
                    self.assignment[slot] = row[c];
                }
                self.choice[d] = i;
                if d + 1 == self.levels.len() {
                    return true;
                }
                d += 1;
                i = 0;
            } else {
                // Exhausted at `d` (on a reduced tree this only happens
                // when the whole list is consumed, never on first entry).
                if d == 0 {
                    return false;
                }
                d -= 1;
                i = self.choice[d] + 1;
            }
        }
    }
}

impl Iterator for GhdEnumerator {
    type Item = Vec<u64>;

    fn next(&mut self) -> Option<Vec<u64>> {
        if self.done {
            return None;
        }
        let found = if self.started {
            let last = self.levels.len() - 1;
            let i = self.choice[last] + 1;
            self.search(last, i)
        } else {
            self.started = true;
            self.search(0, 0)
        };
        if !found {
            self.done = true;
            return None;
        }
        Some(self.assignment.clone())
    }
}

/// Enumerate `q(D)` through a GHD of the query's hypergraph: materialize
/// the bag tree, semijoin-reduce it bottom-up *and* top-down (after which
/// every bag row participates in some answer), then return a
/// [`GhdEnumerator`] streaming the answers with constant delay.
///
/// The stream yields each answer exactly once (bag rows are
/// duplicate-free and an answer determines its row in every bag), in an
/// order fixed by the decomposition tree — collect and sort to compare
/// against [`enumerate_naive`].
pub fn enumerate_via_ghd(
    q: &ConjunctiveQuery,
    db: &Database,
    ghd: &Ghd,
) -> Result<GhdEnumerator, EvalError> {
    Ok(build_bag_tree(q, db, ghd)?.into_enumerator())
}

impl MaterializedBags {
    /// Consuming enumeration preprocessing (reduce the tree both ways,
    /// then wire up the per-bag probe indexes): like
    /// [`MaterializedBags::enumerator`] but rewrites the tree in place,
    /// sequentially — the one-shot and differential-baseline path.
    pub fn into_enumerator(mut self) -> GhdEnumerator {
        let MaterializedBags {
            relations,
            children,
            parents,
            post_order,
            root,
            num_vars,
            ..
        } = &mut self;
        if relations.is_empty() {
            return GhdEnumerator::empty();
        }
        // Bottom-up semijoin pass (children filter parents).
        for &u in post_order.iter() {
            if relations[u].is_empty() {
                return GhdEnumerator::empty();
            }
            for &c in &children[u] {
                let filtered = relations[u].semijoin(&relations[c]);
                relations[u] = Arc::new(filtered);
                if relations[u].is_empty() {
                    return GhdEnumerator::empty();
                }
            }
        }
        // Top-down pass (parents filter children): afterwards the tree is
        // globally consistent — every surviving row extends to a full answer.
        for &u in post_order.iter().rev() {
            for &c in &children[u] {
                let filtered = relations[c].semijoin(&relations[u]);
                relations[c] = Arc::new(filtered);
            }
        }
        build_enumerator(
            std::mem::take(relations),
            children,
            parents,
            *root,
            *num_vars,
        )
    }
}

/// Wire up a [`GhdEnumerator`] over an already fully semijoin-reduced
/// bag tree: covered-variable check, pre-order, per-bag parent-key
/// probe indexes. Shared by the overlay path
/// ([`MaterializedBags::enumerator`]) and the consuming path
/// ([`MaterializedBags::into_enumerator`]); `relations` holds the
/// reduced relation of every node (untouched nodes as shared `Arc`s).
fn build_enumerator(
    relations: Vec<Arc<FlatRelation>>,
    children: &[Vec<usize>],
    parents: &[usize],
    root: usize,
    num_vars: usize,
) -> GhdEnumerator {
    // Every variable must be carried by some bag; a variable outside all
    // bags (possible only for degenerate hand-built inputs) cannot be
    // assigned, so — like the naive enumerator — there are no answers.
    let mut covered = vec![false; num_vars];
    for rel in &relations {
        for v in rel.vars() {
            covered[v.idx()] = true;
        }
    }
    if covered.iter().any(|c| !c) {
        return GhdEnumerator::empty();
    }
    // Pre-order over the rooted tree, parents first.
    let mut pre_order = Vec::with_capacity(relations.len());
    let mut stack = vec![root];
    while let Some(u) = stack.pop() {
        pre_order.push(u);
        stack.extend(children[u].iter().copied());
    }
    // Each bag relation's columns are exactly its bag's variables,
    // so parent-shared variables can be read off the relations.
    let bag_slots: Vec<Vec<usize>> = relations
        .iter()
        .map(|r| r.vars().iter().map(|v| v.idx()).collect())
        .collect();
    // By the running-intersection property, every variable of bag `u`
    // already assigned by an earlier (pre-order) bag also lives in `u`'s
    // parent bag, so indexing each bag by its parent-shared columns is
    // enough to keep the walk consistent.
    let levels: Vec<EnumLevel> = pre_order
        .iter()
        .map(|&u| {
            let rel = Arc::clone(&relations[u]);
            let write: Vec<usize> = rel.vars().iter().map(|v| v.idx()).collect();
            let parent_slots: &[usize] = if parents[u] == usize::MAX {
                &[]
            } else {
                &bag_slots[parents[u]]
            };
            let key_cols: Vec<usize> = (0..rel.arity())
                .filter(|&c| parent_slots.contains(&rel.vars()[c].idx()))
                .collect();
            let key_slots: Vec<usize> = key_cols.iter().map(|&c| rel.vars()[c].idx()).collect();
            let mut index: HashMap<Box<[u64]>, Vec<u32>> = HashMap::with_capacity(rel.len());
            let mut scratch: Vec<u64> = Vec::with_capacity(key_cols.len());
            for (i, t) in rel.iter().enumerate() {
                scratch.clear();
                scratch.extend(key_cols.iter().map(|&c| t[c]));
                match index.get_mut(scratch.as_slice()) {
                    Some(bucket) => bucket.push(i as u32),
                    None => {
                        index.insert(scratch.as_slice().into(), vec![i as u32]);
                    }
                }
            }
            EnumLevel {
                rel,
                write,
                key_slots,
                index,
            }
        })
        .collect();
    GhdEnumerator {
        choice: vec![0; levels.len()],
        levels,
        assignment: vec![0; num_vars],
        scratch: Vec::new(),
        started: false,
        done: false,
    }
}

/// Decide BCQ, choosing the GHD route when an exact decomposition is
/// available (small hypergraph) and falling back to naive search.
pub fn bcq_auto(q: &ConjunctiveQuery, db: &Database) -> bool {
    bcq_auto_with(q, db, None)
}

/// [`bcq_auto`] with an optional precomputed GHD: a caller that already
/// holds a decomposition of `q.hypergraph()` (e.g. a plan cache) skips
/// the re-decomposition entirely.
pub fn bcq_auto_with(q: &ConjunctiveQuery, db: &Database, ghd: Option<&Ghd>) -> bool {
    match ghd {
        // cqd2-lint: allow(panic-in-hot-path, reason = "callers pass a GHD derived from this query; a mismatch is a caller bug strict verify catches earlier")
        Some(g) => bcq_via_ghd(q, db, g).expect("precomputed ghd is valid for this query"),
        None => match ghw_decomposition(&q.hypergraph()) {
            // cqd2-lint: allow(panic-in-hot-path, reason = "the GHD was just computed from this query's hypergraph")
            Some(g) => bcq_via_ghd(q, db, &g).expect("ghd is valid for this query"),
            None => bcq_naive(q, db),
        },
    }
}

/// Count answers, choosing the GHD route when possible.
pub fn count_auto(q: &ConjunctiveQuery, db: &Database) -> u128 {
    count_auto_with(q, db, None)
}

/// [`count_auto`] with an optional precomputed GHD (see [`bcq_auto_with`]).
pub fn count_auto_with(q: &ConjunctiveQuery, db: &Database, ghd: Option<&Ghd>) -> u128 {
    match ghd {
        // cqd2-lint: allow(panic-in-hot-path, reason = "callers pass a GHD derived from this query; a mismatch is a caller bug strict verify catches earlier")
        Some(g) => count_via_ghd(q, db, g).expect("precomputed ghd is valid for this query"),
        None => match ghw_decomposition(&q.hypergraph()) {
            // cqd2-lint: allow(panic-in-hot-path, reason = "the GHD was just computed from this query's hypergraph")
            Some(g) => count_via_ghd(q, db, &g).expect("ghd is valid for this query"),
            None => count_naive(q, db),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delta::DatabaseDelta;
    use crate::generate::{canonical_query, planted_database, random_database};
    use cqd2_hypergraph::generators::{hyperchain, hypercycle};

    fn path_query() -> ConjunctiveQuery {
        ConjunctiveQuery::parse(&[("R", &["?x", "?y"]), ("S", &["?y", "?z"])])
    }

    #[test]
    fn naive_path_query() {
        let q = path_query();
        let mut db = Database::new();
        db.insert_all("R", &[vec![1, 2], vec![4, 5]]);
        db.insert_all("S", &[vec![2, 3], vec![2, 9]]);
        assert!(bcq_naive(&q, &db));
        assert_eq!(count_naive(&q, &db), 2);
        let sols = enumerate_naive(&q, &db);
        assert_eq!(sols, vec![vec![1, 2, 3], vec![1, 2, 9]]);
    }

    #[test]
    fn naive_no_solution() {
        let q = path_query();
        let mut db = Database::new();
        db.insert("R", &[1, 2]);
        db.insert("S", &[3, 4]);
        assert!(!bcq_naive(&q, &db));
        assert_eq!(count_naive(&q, &db), 0);
    }

    #[test]
    fn ghd_agrees_with_naive_on_path() {
        let q = path_query();
        let mut db = Database::new();
        db.insert_all("R", &[vec![1, 2], vec![4, 5], vec![7, 8]]);
        db.insert_all("S", &[vec![2, 3], vec![5, 6]]);
        let ghd = ghw_decomposition(&q.hypergraph()).unwrap();
        assert!(bcq_via_ghd(&q, &db, &ghd).unwrap());
        assert_eq!(count_via_ghd(&q, &db, &ghd).unwrap(), 2);
    }

    #[test]
    fn triangle_query_with_planted_solution() {
        let q = ConjunctiveQuery::parse(&[
            ("R", &["?x", "?y"]),
            ("S", &["?y", "?z"]),
            ("T", &["?z", "?x"]),
        ]);
        let db = planted_database(&q, 20, 30, 3);
        assert!(bcq_naive(&q, &db));
        assert!(bcq_auto(&q, &db));
        assert_eq!(count_auto(&q, &db), count_naive(&q, &db));
    }

    #[test]
    fn evaluators_agree_on_random_instances() {
        for seed in 0..8 {
            let h = if seed % 2 == 0 {
                hyperchain(3, 3)
            } else {
                hypercycle(4, 2)
            };
            let q = canonical_query(&h);
            let db = random_database(&q, 6, 25, seed);
            let naive = bcq_naive(&q, &db);
            let ghd = ghw_decomposition(&q.hypergraph()).unwrap();
            let via = bcq_via_ghd(&q, &db, &ghd).unwrap();
            assert_eq!(naive, via, "BCQ mismatch on seed {seed}");
            let cn = count_naive(&q, &db);
            let cg = count_via_ghd(&q, &db, &ghd).unwrap();
            assert_eq!(cn, cg, "#CQ mismatch on seed {seed}");
        }
    }

    #[test]
    fn ghd_route_crosses_the_parallel_threshold() {
        // A database above PARALLEL_BAG_THRESHOLD exercises the scoped-
        // thread materialization path; answers must match a full join
        // computed with the reference row store (the naive backtracker
        // has no index and would need ~n³ work at this size).
        let q = canonical_query(&hyperchain(3, 2));
        let per_relation = PARALLEL_BAG_THRESHOLD / 3 + 256;
        let db = random_database(&q, 1000, per_relation, 11);
        assert!(db.size() >= PARALLEL_BAG_THRESHOLD, "fixture too small");
        let mut joined = crate::relation::VRelation::unit();
        for atom in &q.atoms {
            joined = joined.join(&crate::relation::VRelation::bind(atom, &db));
        }
        let expected = joined.tuples.len() as u128;
        let ghd = ghw_decomposition(&q.hypergraph()).unwrap();
        assert_eq!(bcq_via_ghd(&q, &db, &ghd).unwrap(), expected > 0);
        assert_eq!(count_via_ghd(&q, &db, &ghd).unwrap(), expected);
        // The batch-executor opt-out must force the sequential path and
        // produce identical answers.
        let sequential = with_sequential_bags(|| count_via_ghd(&q, &db, &ghd).unwrap());
        assert_eq!(sequential, expected);
    }

    #[test]
    fn constants_and_repeats_in_evaluation() {
        let q = ConjunctiveQuery::parse(&[("R", &["?x", "?x", "5"]), ("S", &["?x", "?y"])]);
        let mut db = Database::new();
        db.insert_all("R", &[vec![1, 1, 5], vec![2, 3, 5], vec![4, 4, 6]]);
        db.insert_all("S", &[vec![1, 10], vec![1, 11], vec![4, 12]]);
        assert!(bcq_naive(&q, &db));
        assert_eq!(count_naive(&q, &db), 2); // x=1 with y in {10,11}
        assert_eq!(count_auto(&q, &db), 2);
    }

    #[test]
    fn empty_query_edge_cases() {
        // All-constant atom: acts as an existence check.
        let q = ConjunctiveQuery::parse(&[("R", &["1", "2"])]);
        let mut db = Database::new();
        db.insert("R", &[1, 2]);
        assert!(bcq_naive(&q, &db));
        assert_eq!(count_naive(&q, &db), 1); // the empty assignment
        let mut db2 = Database::new();
        db2.insert("R", &[9, 9]);
        assert!(!bcq_naive(&q, &db2));
    }

    #[test]
    fn auto_with_precomputed_ghd_matches_recomputed_route() {
        // The plan-cache entry point: a caller holding a decomposition
        // (here: freshly computed, in practice translated from a cache
        // hit) must get the same answers without re-decomposing.
        let q = canonical_query(&hypercycle(5, 2));
        let db = planted_database(&q, 7, 18, 4);
        let ghd = ghw_decomposition(&q.hypergraph()).unwrap();
        assert_eq!(bcq_auto_with(&q, &db, Some(&ghd)), bcq_auto(&q, &db));
        assert_eq!(count_auto_with(&q, &db, Some(&ghd)), count_auto(&q, &db));
        assert_eq!(bcq_auto_with(&q, &db, None), bcq_auto(&q, &db));
        assert_eq!(count_auto_with(&q, &db, None), count_auto(&q, &db));
    }

    /// Collected-and-sorted view of the streaming enumerator, for
    /// comparisons against `enumerate_naive` (which sorts).
    fn enumerate_ghd_sorted(q: &ConjunctiveQuery, db: &Database, ghd: &Ghd) -> Vec<Vec<u64>> {
        let mut out: Vec<Vec<u64>> = enumerate_via_ghd(q, db, ghd).unwrap().collect();
        out.sort_unstable();
        out
    }

    #[test]
    fn ghd_enumeration_matches_naive_on_path() {
        let q = path_query();
        let mut db = Database::new();
        db.insert_all("R", &[vec![1, 2], vec![4, 5], vec![7, 8]]);
        db.insert_all("S", &[vec![2, 3], vec![2, 9], vec![5, 6]]);
        let ghd = ghw_decomposition(&q.hypergraph()).unwrap();
        assert_eq!(
            enumerate_ghd_sorted(&q, &db, &ghd),
            enumerate_naive(&q, &db)
        );
    }

    #[test]
    fn ghd_enumeration_streams_lazily_and_completely() {
        let q = canonical_query(&hypercycle(5, 2));
        let db = planted_database(&q, 7, 30, 13);
        let ghd = ghw_decomposition(&q.hypergraph()).unwrap();
        let total = count_via_ghd(&q, &db, &ghd).unwrap();
        assert!(total > 0, "planted instance must have answers");
        // A limited pull sees exactly min(limit, total) answers…
        let mut cursor = enumerate_via_ghd(&q, &db, &ghd).unwrap();
        let first: Vec<_> = cursor.by_ref().take(2).collect();
        assert_eq!(first.len() as u128, total.min(2));
        // …and draining the rest completes the answer set, fused at the end.
        let rest: Vec<_> = cursor.by_ref().collect();
        assert_eq!((first.len() + rest.len()) as u128, total);
        assert_eq!(cursor.next(), None);
        assert_eq!(cursor.next(), None);
    }

    #[test]
    fn ghd_enumeration_empty_results() {
        let q = path_query();
        // Entirely empty database.
        let ghd = ghw_decomposition(&q.hypergraph()).unwrap();
        let empty = Database::new();
        assert_eq!(enumerate_via_ghd(&q, &empty, &ghd).unwrap().count(), 0);
        // Non-empty relations that do not join.
        let mut db = Database::new();
        db.insert("R", &[1, 2]);
        db.insert("S", &[3, 4]);
        assert_eq!(enumerate_via_ghd(&q, &db, &ghd).unwrap().count(), 0);
    }

    #[test]
    fn ghd_enumeration_handles_constants_and_repeats() {
        let q = ConjunctiveQuery::parse(&[("R", &["?x", "?x", "5"]), ("S", &["?x", "?y"])]);
        let mut db = Database::new();
        db.insert_all("R", &[vec![1, 1, 5], vec![2, 3, 5], vec![4, 4, 6]]);
        db.insert_all("S", &[vec![1, 10], vec![1, 11], vec![4, 12]]);
        let ghd = ghw_decomposition(&q.hypergraph()).unwrap();
        assert_eq!(
            enumerate_ghd_sorted(&q, &db, &ghd),
            enumerate_naive(&q, &db)
        );
    }

    #[test]
    fn invalid_ghd_is_a_typed_error() {
        let q = path_query();
        let other = canonical_query(&hypercycle(6, 2));
        let foreign = ghw_decomposition(&other.hypergraph()).unwrap();
        let db = Database::new();
        let err = enumerate_via_ghd(&q, &db, &foreign).unwrap_err();
        assert!(matches!(err, EvalError::InvalidGhd(_)), "{err}");
        // The hierarchy is a real `std::error::Error` with a source chain.
        let dyn_err: &dyn std::error::Error = &err;
        assert!(dyn_err.source().is_some());
        assert_eq!(bcq_via_ghd(&q, &db, &foreign).unwrap_err(), err);
    }

    #[test]
    fn cartesian_product_counting() {
        let q = ConjunctiveQuery::parse(&[("R", &["?x"]), ("S", &["?y"])]);
        let mut db = Database::new();
        db.insert_all("R", &[vec![1], vec![2], vec![3]]);
        db.insert_all("S", &[vec![7], vec![8]]);
        assert_eq!(count_naive(&q, &db), 6);
        assert_eq!(count_auto(&q, &db), 6);
    }

    /// Three-atom chain: R–S–T decomposes into a multi-bag tree, so a
    /// delta to one relation dirties a proper subset of bags.
    fn chain_query() -> ConjunctiveQuery {
        ConjunctiveQuery::parse(&[
            ("R", &["?x", "?y"]),
            ("S", &["?y", "?z"]),
            ("T", &["?z", "?w"]),
        ])
    }

    #[test]
    fn refresh_rebuilds_only_dirty_bags_and_matches_fresh_build() {
        let q = chain_query();
        let mut db = Database::new();
        db.insert_all("R", &[vec![1, 2], vec![4, 5], vec![7, 8]]);
        db.insert_all("S", &[vec![2, 3], vec![5, 6]]);
        db.insert_all("T", &[vec![3, 30], vec![6, 60], vec![6, 61]]);
        let ghd = ghw_decomposition(&q.hypergraph()).unwrap();
        let bags = MaterializedBags::build(&q, &db, &ghd).unwrap();
        // Warm the caches with a full pass mix before refreshing.
        assert!(bags.bcq());
        assert!(bags.count() > 0);

        // Delta: grow T, leave R and S untouched.
        let mut delta = DatabaseDelta::new();
        delta.insert("T", vec![3, 31]);
        delta.delete("T", vec![6, 61]);
        let applied = db.apply_delta(&delta).unwrap();
        let (warm, stats) = bags.refresh(&q, &applied.db, &applied.touched);

        // Only the bags reading T were re-materialized.
        assert!(stats.rewritten >= 1, "delta must dirty at least one bag");
        assert!(
            stats.rewritten < stats.total,
            "a single-relation delta must keep some bag clean"
        );
        // Clean bags are shared by Arc identity, dirty ones are not.
        let mut shared = 0;
        for u in 0..bags.num_bags() {
            if Arc::ptr_eq(bags.bag_arc(u), warm.bag_arc(u)) {
                shared += 1;
            }
        }
        assert_eq!(shared, stats.total - stats.rewritten);

        // The refreshed tree answers exactly like a cold rebuild.
        let fresh = MaterializedBags::build(&q, &applied.db, &ghd).unwrap();
        assert_eq!(warm.bcq(), fresh.bcq());
        assert_eq!(warm.count(), fresh.count());
        let mut a: Vec<_> = warm.enumerator().collect();
        let mut b: Vec<_> = fresh.enumerator().collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
        assert_eq!(b, enumerate_naive(&q, &applied.db));
    }

    #[test]
    fn refresh_with_disjoint_delta_shares_everything() {
        let q = chain_query();
        let mut db = Database::new();
        db.insert_all("R", &[vec![1, 2]]);
        db.insert_all("S", &[vec![2, 3]]);
        db.insert_all("T", &[vec![3, 4]]);
        db.insert_all("Unrelated", &[vec![9]]);
        let ghd = ghw_decomposition(&q.hypergraph()).unwrap();
        let bags = MaterializedBags::build(&q, &db, &ghd).unwrap();
        let mut delta = DatabaseDelta::new();
        delta.insert("Unrelated", vec![10]);
        let applied = db.apply_delta(&delta).unwrap();
        let (warm, stats) = bags.refresh(&q, &applied.db, &applied.touched);
        assert_eq!(stats.rewritten, 0);
        for u in 0..bags.num_bags() {
            assert!(Arc::ptr_eq(bags.bag_arc(u), warm.bag_arc(u)));
        }
        assert!(warm.bcq());
    }

    #[test]
    fn refresh_carries_clean_caches_and_stays_correct_across_rounds() {
        // Several delta rounds against a planted instance, comparing the
        // warm-refreshed tree against cold rebuilds each round (caches
        // from prior rounds must never leak stale rows into answers).
        let q = chain_query();
        let mut db = planted_database(&q, 40, 120, 17);
        let ghd = ghw_decomposition(&q.hypergraph()).unwrap();
        let mut warm = MaterializedBags::build(&q, &db, &ghd).unwrap();
        for round in 0u64..4 {
            // Warm every cache family: bcq (base_tables), count
            // (leaf_aggs), enumerator (down_tables).
            let _ = warm.bcq();
            let _ = warm.count();
            let _ = warm.enumerator().count();
            let target = if round % 2 == 0 { "R" } else { "S" };
            let mut delta = DatabaseDelta::new();
            delta.insert(target, vec![1000 + round, 2000 + round]);
            if let Some(t) = db.relation(target).and_then(|r| r.tuples.first()) {
                delta.delete(target, t.clone());
            }
            let applied = db.apply_delta(&delta).unwrap();
            let (next, stats) = warm.refresh(&q, &applied.db, &applied.touched);
            assert!(stats.rewritten > 0);
            let fresh = MaterializedBags::build(&q, &applied.db, &ghd).unwrap();
            assert_eq!(next.count(), fresh.count(), "round {round}");
            assert_eq!(next.bcq(), fresh.bcq(), "round {round}");
            assert_eq!(
                next.enumerator().count(),
                fresh.enumerator().count(),
                "round {round}"
            );
            db = applied.db;
            warm = next;
        }
    }
}
