//! Query and database generators for tests and benchmarks.

use crate::database::Database;
use crate::query::{Atom, ConjunctiveQuery, Term, Var};
use cqd2_hypergraph::Hypergraph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The canonical self-join-free query of a hypergraph: one atom `R_e` per
/// edge, whose arguments are the edge's vertices (no repeated variables).
/// The query's hypergraph is the input hypergraph (up to isolated
/// vertices, which carry no atom).
pub fn canonical_query(h: &Hypergraph) -> ConjunctiveQuery {
    let var_names: Vec<String> = h
        .vertices()
        .map(|v| h.vertex_name(v).trim_start_matches('?').to_string())
        .collect();
    let atoms = h
        .edge_ids()
        .map(|e| Atom {
            relation: format!("R{}", e.idx()),
            terms: h.edge(e).iter().map(|&v| Term::Var(Var(v.0))).collect(),
        })
        .collect();
    ConjunctiveQuery { atoms, var_names }
}

/// A seeded random database for `q`'s schema: each relation receives
/// `tuples_per_relation` uniform tuples over `[0, domain)`.
pub fn random_database(
    q: &ConjunctiveQuery,
    domain: u64,
    tuples_per_relation: usize,
    seed: u64,
) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = Database::new();
    for atom in &q.atoms {
        for _ in 0..tuples_per_relation {
            let t: Vec<u64> = (0..atom.terms.len())
                .map(|_| rng.gen_range(0..domain))
                .collect();
            db.insert(&atom.relation, &t);
        }
    }
    db
}

/// A seeded database guaranteed to contain at least one solution: a random
/// assignment is planted (its atom images inserted), then noise tuples are
/// added as in [`random_database`].
pub fn planted_database(
    q: &ConjunctiveQuery,
    domain: u64,
    noise_per_relation: usize,
    seed: u64,
) -> Database {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9E3779B97F4A7C15);
    let assignment: Vec<u64> = (0..q.num_vars())
        .map(|_| rng.gen_range(0..domain))
        .collect();
    let mut db = random_database(q, domain, noise_per_relation, seed);
    for atom in &q.atoms {
        let t: Vec<u64> = atom
            .terms
            .iter()
            .map(|term| match term {
                Term::Var(v) => assignment[v.idx()],
                Term::Const(c) => *c,
            })
            .collect();
        db.insert(&atom.relation, &t);
    }
    db
}

/// A database on which the canonical query of a jigsaw-like degree-2
/// hypergraph is *hard for naive join but easy with a GHD*: `k` planted
/// partial matches that almost-join pairwise, creating a large
/// intermediate result, plus one real solution.
pub fn adversarial_database(q: &ConjunctiveQuery, k: u64, seed: u64) -> Database {
    let mut db = planted_database(q, 2 * k, 0, seed);
    // Per-relation combinatorial padding: tuples agreeing on "even" values
    // so partial joins multiply but rarely complete.
    let mut rng = StdRng::seed_from_u64(seed ^ 0xABCDEF);
    for atom in &q.atoms {
        for _ in 0..k {
            let t: Vec<u64> = (0..atom.terms.len())
                .map(|_| 2 * rng.gen_range(0..k))
                .collect();
            db.insert(&atom.relation, &t);
        }
    }
    db
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::bcq_naive;
    use cqd2_hypergraph::generators::{hyperchain, hypercycle};

    #[test]
    fn canonical_query_roundtrip() {
        let h = hypercycle(4, 3);
        let q = canonical_query(&h);
        assert!(q.is_self_join_free());
        assert_eq!(q.atoms.len(), h.num_edges());
        let h2 = q.hypergraph();
        assert!(cqd2_hypergraph::are_isomorphic(&h, &h2));
    }

    #[test]
    fn planted_always_satisfiable() {
        for seed in 0..6 {
            let q = canonical_query(&hyperchain(4, 3));
            let db = planted_database(&q, 10, 15, seed);
            assert!(bcq_naive(&q, &db), "seed {seed} lost its plant");
        }
    }

    #[test]
    fn generators_are_deterministic() {
        let q = canonical_query(&hyperchain(3, 2));
        let a = random_database(&q, 9, 20, 7);
        let b = random_database(&q, 9, 20, 7);
        assert_eq!(a, b);
        let c = adversarial_database(&q, 8, 3);
        let d = adversarial_database(&q, 8, 3);
        assert_eq!(c, d);
    }
}
