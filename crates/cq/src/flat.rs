//! The columnar execution kernel: [`FlatRelation`].
//!
//! A [`FlatRelation`] stores all tuples in **one contiguous `Vec<u64>`
//! buffer** with a fixed stride (the arity): row `i` occupies
//! `data[i * arity .. (i + 1) * arity]`. Compared with the row-store
//! [`crate::relation::VRelation`] (`Vec<Vec<u64>>`, kept as the reference
//! implementation for differential tests), this layout
//!
//! - allocates **O(1)** buffers per operator instead of one `Vec` per
//!   tuple, per hash key, and per projection;
//! - resolves schemas (shared variables, key positions, output columns)
//!   **once per operator**, not per tuple;
//! - probes hash tables with **packed key slices** (a single-column fast
//!   path keys directly on `u64`; multi-column keys are packed into a
//!   reusable scratch buffer and probed by `&[u64]`, so the probe side
//!   allocates nothing);
//! - runs the sort-based dedup **only where an operator can introduce
//!   duplicates**: binding an atom that drops positions (constants or
//!   repeated variables) and projections that drop columns. Joins and
//!   semijoins of duplicate-free inputs are duplicate-free by
//!   construction and skip the sort entirely;
//! - projects **without touching rows** when `keep` equals the column
//!   list, and by straight prefix copies when `keep` is a prefix.
//!
//! Every constructor establishes the invariant that rows are distinct;
//! all operators preserve it.

use crate::database::Database;
use crate::query::{Atom, Term, Var};
use std::collections::{HashMap, HashSet};

/// A columnar relation: variables as columns, tuples packed row-major
/// into one flat buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlatRelation {
    /// Column variables (distinct).
    pub(crate) vars: Vec<Var>,
    /// Number of rows (tracked explicitly: arity may be 0).
    pub(crate) rows: usize,
    /// `rows * vars.len()` values, row-major.
    pub(crate) data: Vec<u64>,
}

impl FlatRelation {
    /// The relation over no variables containing the empty tuple
    /// (the join identity).
    pub fn unit() -> FlatRelation {
        FlatRelation {
            vars: Vec::new(),
            rows: 1,
            data: Vec::new(),
        }
    }

    /// The empty relation over `vars`.
    pub fn empty(vars: Vec<Var>) -> FlatRelation {
        FlatRelation {
            vars,
            rows: 0,
            data: Vec::new(),
        }
    }

    /// Crate-internal constructor from pre-validated parts: the caller
    /// guarantees `data.len() == rows * vars.len()` and that rows are
    /// distinct (e.g. a filtered copy of an existing relation).
    pub(crate) fn from_parts(vars: Vec<Var>, rows: usize, data: Vec<u64>) -> FlatRelation {
        debug_assert_eq!(data.len(), rows * vars.len());
        FlatRelation { vars, rows, data }
    }

    /// Build from explicit rows (each of length `vars.len()`); duplicate
    /// rows are removed.
    pub fn from_rows(vars: Vec<Var>, tuples: &[Vec<u64>]) -> FlatRelation {
        let arity = vars.len();
        let mut data = Vec::with_capacity(tuples.len() * arity);
        for t in tuples {
            assert_eq!(t.len(), arity, "row length must match arity");
            data.extend_from_slice(t);
        }
        let mut rel = FlatRelation {
            vars,
            rows: tuples.len(),
            data,
        };
        rel.dedup();
        rel
    }

    /// Column variables.
    pub fn vars(&self) -> &[Var] {
        &self.vars
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.vars.len()
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows
    }

    /// Is the relation empty (no rows)?
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Row `i` as a slice of the shared buffer.
    pub fn row(&self, i: usize) -> &[u64] {
        debug_assert!(i < self.rows);
        let a = self.vars.len();
        &self.data[i * a..i * a + a]
    }

    /// Iterate over rows as slices.
    pub fn iter(&self) -> impl Iterator<Item = &[u64]> + '_ {
        (0..self.rows).map(move |i| self.row(i))
    }

    /// Copy out as owned tuples (tests and compatibility shims).
    pub fn to_tuples(&self) -> Vec<Vec<u64>> {
        self.iter().map(<[u64]>::to_vec).collect()
    }

    /// Position of `v` among the columns.
    fn col(&self, v: Var) -> Option<usize> {
        self.vars.iter().position(|&w| w == v)
    }

    /// Bind `atom` against `db`: select tuples matching the atom's
    /// constants and repeated variables and project to one column per
    /// distinct variable. The per-position checks are resolved **once**
    /// here; the tuple loop is branch-light. A missing relation (or an
    /// arity mismatch) yields the empty result.
    pub fn bind(atom: &Atom, db: &Database) -> FlatRelation {
        let vars = atom.vars();
        let Some(stored) = db.relation(&atom.relation) else {
            return FlatRelation::empty(vars);
        };
        if stored.arity != atom.terms.len() {
            return FlatRelation::empty(vars);
        }
        // First-occurrence position of each distinct variable: the
        // projection map.
        let first_pos: Vec<usize> = vars
            .iter()
            .map(|v| {
                atom.terms
                    .iter()
                    .position(|t| matches!(t, Term::Var(w) if w == v))
                    .expect("var occurs")
            })
            .collect();
        // Per-position selection checks, resolved once.
        enum Check {
            Const(usize, u64),
            SameAs(usize, usize),
        }
        let mut checks: Vec<Check> = Vec::new();
        for (i, term) in atom.terms.iter().enumerate() {
            match term {
                Term::Const(c) => checks.push(Check::Const(i, *c)),
                Term::Var(v) => {
                    let first = first_pos[vars.iter().position(|w| w == v).expect("var")];
                    if first != i {
                        checks.push(Check::SameAs(i, first));
                    }
                }
            }
        }
        let arity = vars.len();
        let mut data = Vec::with_capacity(stored.tuples.len() * arity);
        let mut rows = 0usize;
        'tup: for t in &stored.tuples {
            for check in &checks {
                match *check {
                    Check::Const(i, c) => {
                        if t[i] != c {
                            continue 'tup;
                        }
                    }
                    Check::SameAs(i, j) => {
                        if t[i] != t[j] {
                            continue 'tup;
                        }
                    }
                }
            }
            data.extend(first_pos.iter().map(|&p| t[p]));
            rows += 1;
        }
        let mut rel = FlatRelation { vars, rows, data };
        // Dropping positions (constants / repeated variables) can merge
        // distinct stored tuples; a full-arity permutation cannot.
        if arity != atom.terms.len() {
            rel.dedup();
        }
        rel
    }

    /// Natural join on shared variables. Schema resolution (shared
    /// variables, key and payload positions) happens once; the build side
    /// is `other`, probed with packed key slices. Duplicate-free inputs
    /// produce a duplicate-free output, so no dedup pass runs.
    pub fn join(&self, other: &FlatRelation) -> FlatRelation {
        let shared: Vec<Var> = self
            .vars
            .iter()
            .copied()
            .filter(|&v| other.col(v).is_some())
            .collect();
        let other_extra: Vec<usize> = (0..other.vars.len())
            .filter(|&i| !shared.contains(&other.vars[i]))
            .collect();
        let mut out_vars = self.vars.clone();
        out_vars.extend(other_extra.iter().map(|&i| other.vars[i]));
        let out_arity = out_vars.len();

        if shared.is_empty() {
            // Cartesian product (also covers joins with `unit`).
            let mut data = Vec::with_capacity(self.rows * other.rows * out_arity);
            for r in self.iter() {
                for s in other.iter() {
                    data.extend_from_slice(r);
                    data.extend(other_extra.iter().map(|&p| s[p]));
                }
            }
            return FlatRelation {
                vars: out_vars,
                rows: self.rows * other.rows,
                data,
            };
        }

        let self_key: Vec<usize> = shared
            .iter()
            .map(|&v| self.col(v).expect("shared"))
            .collect();
        let other_key: Vec<usize> = shared
            .iter()
            .map(|&v| other.col(v).expect("shared"))
            .collect();
        check_row_index_fits(other.rows);
        let mut data = Vec::new();
        let mut rows = 0usize;
        if shared.len() == 1 {
            // Single-column fast path: key directly on the value.
            let (sp, op) = (self_key[0], other_key[0]);
            let mut index: HashMap<u64, Vec<u32>> = HashMap::with_capacity(other.rows);
            for (i, s) in other.iter().enumerate() {
                index.entry(s[op]).or_default().push(i as u32);
            }
            for r in self.iter() {
                if let Some(matches) = index.get(&r[sp]) {
                    for &j in matches {
                        let s = other.row(j as usize);
                        data.extend_from_slice(r);
                        data.extend(other_extra.iter().map(|&p| s[p]));
                        rows += 1;
                    }
                }
            }
        } else {
            // Multi-column keys packed into a reusable scratch buffer;
            // the probe side allocates nothing, the build side allocates
            // one boxed key per *distinct* key.
            let mut index: HashMap<Box<[u64]>, Vec<u32>> = HashMap::with_capacity(other.rows);
            let mut scratch: Vec<u64> = Vec::with_capacity(shared.len());
            for (i, s) in other.iter().enumerate() {
                pack_key(&mut scratch, s, &other_key);
                match index.get_mut(scratch.as_slice()) {
                    Some(bucket) => bucket.push(i as u32),
                    None => {
                        index.insert(scratch.as_slice().into(), vec![i as u32]);
                    }
                }
            }
            for r in self.iter() {
                pack_key(&mut scratch, r, &self_key);
                if let Some(matches) = index.get(scratch.as_slice()) {
                    for &j in matches {
                        let s = other.row(j as usize);
                        data.extend_from_slice(r);
                        data.extend(other_extra.iter().map(|&p| s[p]));
                        rows += 1;
                    }
                }
            }
        }
        FlatRelation {
            vars: out_vars,
            rows,
            data,
        }
    }

    /// Semijoin: keep the rows of `self` that join with some row of
    /// `other`. Key positions resolve once; probing uses packed slices.
    pub fn semijoin(&self, other: &FlatRelation) -> FlatRelation {
        let shared: Vec<Var> = self
            .vars
            .iter()
            .copied()
            .filter(|&v| other.col(v).is_some())
            .collect();
        if shared.is_empty() {
            return if other.is_empty() {
                FlatRelation::empty(self.vars.clone())
            } else {
                self.clone()
            };
        }
        let self_key: Vec<usize> = shared
            .iter()
            .map(|&v| self.col(v).expect("shared"))
            .collect();
        let other_key: Vec<usize> = shared
            .iter()
            .map(|&v| other.col(v).expect("shared"))
            .collect();
        let mut data = Vec::new();
        let mut rows = 0usize;
        if shared.len() == 1 {
            let (sp, op) = (self_key[0], other_key[0]);
            let keys: HashSet<u64> = other.iter().map(|s| s[op]).collect();
            for r in self.iter() {
                if keys.contains(&r[sp]) {
                    data.extend_from_slice(r);
                    rows += 1;
                }
            }
        } else {
            let mut keys: HashSet<Box<[u64]>> = HashSet::with_capacity(other.rows);
            let mut scratch: Vec<u64> = Vec::with_capacity(shared.len());
            for s in other.iter() {
                pack_key(&mut scratch, s, &other_key);
                if !keys.contains(scratch.as_slice()) {
                    keys.insert(scratch.as_slice().into());
                }
            }
            for r in self.iter() {
                pack_key(&mut scratch, r, &self_key);
                if keys.contains(scratch.as_slice()) {
                    data.extend_from_slice(r);
                    rows += 1;
                }
            }
        }
        FlatRelation {
            vars: self.vars.clone(),
            rows,
            data,
        }
    }

    /// Project to `keep` (order taken from `keep`; unknown variables are
    /// an error). Keeping every column in place is zero-copy per row (a
    /// buffer clone); a strict prefix copies contiguous slices; only
    /// projections that *drop* columns pay the dedup sort.
    pub fn project(&self, keep: &[Var]) -> FlatRelation {
        let pos: Vec<usize> = keep
            .iter()
            .map(|&v| self.col(v).expect("projection variable must exist"))
            .collect();
        if keep == self.vars.as_slice() {
            return self.clone();
        }
        let arity = self.arity();
        let k = keep.len();
        let mut out = FlatRelation {
            vars: keep.to_vec(),
            rows: self.rows,
            data: Vec::with_capacity(self.rows * k),
        };
        if pos.iter().enumerate().all(|(i, &p)| i == p) {
            // Prefix projection: straight per-row prefix copies.
            for r in self.iter() {
                out.data.extend_from_slice(&r[..k]);
            }
        } else {
            for r in self.iter() {
                out.data.extend(pos.iter().map(|&p| r[p]));
            }
        }
        // Only a *permutation* of the columns is guaranteed to keep rows
        // distinct; dropping a column — or repeating one while another
        // is dropped — can merge rows and needs the dedup.
        let mut hit = vec![false; arity];
        let is_permutation =
            k == arity && pos.iter().all(|&p| !std::mem::replace(&mut hit[p], true));
        if !is_permutation {
            out.dedup();
        }
        out
    }

    /// Sort rows lexicographically and remove duplicates. Operators call
    /// this only where duplicates can actually arise; it is public so the
    /// benches can measure it in isolation.
    pub fn dedup(&mut self) {
        let a = self.vars.len();
        if a == 0 {
            self.rows = self.rows.min(1);
            return;
        }
        if self.rows <= 1 {
            return;
        }
        check_row_index_fits(self.rows);
        let mut idx: Vec<u32> = (0..self.rows as u32).collect();
        let data = &self.data;
        idx.sort_unstable_by(|&i, &j| {
            data[i as usize * a..i as usize * a + a].cmp(&data[j as usize * a..j as usize * a + a])
        });
        let mut out: Vec<u64> = Vec::with_capacity(self.data.len());
        for &i in &idx {
            let row = &self.data[i as usize * a..i as usize * a + a];
            if out.len() < a || &out[out.len() - a..] != row {
                out.extend_from_slice(row);
            }
        }
        self.rows = out.len() / a;
        self.data = out;
    }
}

/// Pack the key columns of `row` into `scratch` (cleared first).
fn pack_key(scratch: &mut Vec<u64>, row: &[u64], pos: &[usize]) {
    scratch.clear();
    scratch.extend(pos.iter().map(|&p| row[p]));
}

/// Row indices inside hash buckets and the dedup permutation are `u32`
/// (halving index-buffer memory); fail loudly rather than silently
/// truncating on relations beyond 2^32 rows.
fn check_row_index_fits(rows: usize) {
    assert!(
        rows <= u32::MAX as usize,
        "FlatRelation limited to 2^32 rows (got {rows})"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::ConjunctiveQuery;

    fn v(i: u32) -> Var {
        Var(i)
    }

    fn rel(vars: &[u32], tuples: &[&[u64]]) -> FlatRelation {
        FlatRelation::from_rows(
            vars.iter().map(|&i| v(i)).collect(),
            &tuples.iter().map(|t| t.to_vec()).collect::<Vec<_>>(),
        )
    }

    fn sorted_tuples(r: &FlatRelation) -> Vec<Vec<u64>> {
        let mut t = r.to_tuples();
        t.sort_unstable();
        t
    }

    #[test]
    fn layout_and_accessors() {
        let r = rel(&[0, 1], &[&[1, 2], &[3, 4]]);
        assert_eq!(r.arity(), 2);
        assert_eq!(r.len(), 2);
        assert_eq!(r.row(0).len(), 2);
        assert_eq!(r.iter().count(), 2);
    }

    #[test]
    fn from_rows_dedups() {
        let r = rel(&[0], &[&[2], &[1], &[2]]);
        assert_eq!(sorted_tuples(&r), vec![vec![1], vec![2]]);
    }

    #[test]
    fn bind_handles_constants_and_repeats() {
        let mut db = Database::new();
        db.insert_all(
            "R",
            &[vec![1, 1, 5], vec![1, 2, 5], vec![2, 2, 7], vec![3, 3, 5]],
        );
        let q = ConjunctiveQuery::parse(&[("R", &["?x", "?x", "5"])]);
        let r = FlatRelation::bind(&q.atoms[0], &db);
        assert_eq!(r.arity(), 1);
        assert_eq!(sorted_tuples(&r), vec![vec![1], vec![3]]);
    }

    #[test]
    fn bind_missing_or_mismatched_relation_is_empty() {
        let q = ConjunctiveQuery::parse(&[("R", &["?x"])]);
        assert!(FlatRelation::bind(&q.atoms[0], &Database::new()).is_empty());
        let mut db = Database::new();
        db.insert("R", &[1, 2]); // arity 2 vs unary atom
        assert!(FlatRelation::bind(&q.atoms[0], &db).is_empty());
    }

    #[test]
    fn join_on_shared_variable() {
        let a = rel(&[0, 1], &[&[1, 2], &[2, 3]]);
        let b = rel(&[1, 2], &[&[2, 10], &[2, 11], &[9, 12]]);
        let j = a.join(&b);
        assert_eq!(j.vars(), &[v(0), v(1), v(2)]);
        assert_eq!(sorted_tuples(&j), vec![vec![1, 2, 10], vec![1, 2, 11]]);
    }

    #[test]
    fn join_multi_column_key() {
        let a = rel(&[0, 1, 2], &[&[1, 2, 7], &[1, 3, 8], &[2, 2, 9]]);
        let b = rel(&[0, 1, 3], &[&[1, 2, 70], &[1, 2, 71], &[2, 3, 72]]);
        let j = a.join(&b);
        assert_eq!(j.vars(), &[v(0), v(1), v(2), v(3)]);
        assert_eq!(
            sorted_tuples(&j),
            vec![vec![1, 2, 7, 70], vec![1, 2, 7, 71]]
        );
    }

    #[test]
    fn join_without_shared_is_product() {
        let a = rel(&[0], &[&[1], &[2]]);
        let b = rel(&[1], &[&[7], &[8]]);
        assert_eq!(a.join(&b).len(), 4);
    }

    #[test]
    fn join_with_unit() {
        let a = rel(&[0], &[&[1]]);
        assert_eq!(a.join(&FlatRelation::unit()), a);
        assert_eq!(
            sorted_tuples(&FlatRelation::unit().join(&a)),
            sorted_tuples(&a)
        );
    }

    #[test]
    fn unit_and_empty_edge_cases() {
        let u = FlatRelation::unit();
        assert_eq!(u.len(), 1);
        assert_eq!(u.arity(), 0);
        assert_eq!(u.join(&u).len(), 1);
        let e = FlatRelation::empty(vec![v(0)]);
        assert!(e.join(&u).is_empty());
        assert!(u.join(&e).is_empty());
    }

    #[test]
    fn project_keep_all_and_prefix_and_scatter() {
        let a = rel(&[0, 1, 2], &[&[1, 2, 3], &[1, 2, 4]]);
        assert_eq!(a.project(&[v(0), v(1), v(2)]), a);
        let p = a.project(&[v(0), v(1)]);
        assert_eq!(sorted_tuples(&p), vec![vec![1, 2]]);
        let s = a.project(&[v(2), v(0)]);
        assert_eq!(sorted_tuples(&s), vec![vec![3, 1], vec![4, 1]]);
    }

    #[test]
    fn project_repeating_a_column_still_dedups() {
        // keep.len() == arity but not a permutation: repeating x while
        // dropping y merges the two rows; the distinct-rows invariant
        // must survive.
        let a = rel(&[0, 1], &[&[1, 2], &[1, 3]]);
        let p = a.project(&[v(0), v(0)]);
        assert_eq!(sorted_tuples(&p), vec![vec![1, 1]]);
    }

    #[test]
    fn semijoin_filters() {
        let a = rel(&[0, 1], &[&[1, 2], &[2, 3]]);
        let b = rel(&[1], &[&[2]]);
        assert_eq!(sorted_tuples(&a.semijoin(&b)), vec![vec![1, 2]]);
        // Disjoint semijoin: nonempty other keeps everything.
        let c = rel(&[9], &[&[5]]);
        assert_eq!(a.semijoin(&c).len(), 2);
        // Disjoint semijoin with empty other: empties.
        let e = FlatRelation::empty(vec![v(9)]);
        assert!(a.semijoin(&e).is_empty());
        // Multi-column semijoin key.
        let d = rel(&[0, 1], &[&[2, 3], &[9, 9]]);
        assert_eq!(sorted_tuples(&a.semijoin(&d)), vec![vec![2, 3]]);
    }

    #[test]
    fn dedup_is_idempotent_and_total() {
        let mut r = FlatRelation {
            vars: vec![v(0), v(1)],
            rows: 4,
            data: vec![3, 4, 1, 2, 3, 4, 1, 2],
        };
        r.dedup();
        assert_eq!(r.len(), 2);
        assert_eq!(sorted_tuples(&r), vec![vec![1, 2], vec![3, 4]]);
        r.dedup();
        assert_eq!(r.len(), 2);
    }
}
