//! The columnar execution kernel: [`FlatRelation`].
//!
//! A [`FlatRelation`] stores all tuples in **one contiguous `Vec<u64>`
//! buffer** with a fixed stride (the arity): row `i` occupies
//! `data[i * arity .. (i + 1) * arity]`. Compared with the row-store
//! [`crate::relation::VRelation`] (`Vec<Vec<u64>>`, kept as the reference
//! implementation for differential tests), this layout
//!
//! - allocates **O(1)** buffers per operator instead of one `Vec` per
//!   tuple, per hash key, and per projection;
//! - resolves schemas (shared variables, key positions, output columns)
//!   **once per operator**, not per tuple;
//! - probes through the purpose-built `KeyTable` (crate-private, in
//!   `crate::probe`)
//!   (multiply–xor–shift hashing over flat `u32` chains — no SipHash, no
//!   per-key boxing) with **packed key slices**, so the probe side
//!   allocates nothing;
//! - filters in **fixed-size chunks**: [`FlatRelation::semijoin_filter`]
//!   first gathers and hashes key columns a chunk at a time (a
//!   branch-free, autovectorization-friendly loop), records survivors in
//!   a selection bitmask, and only then materializes output rows — and
//!   returns `None` when *every* row survives, so unchanged inputs are
//!   never copied at all (the enabler of the bag-tree overlay's
//!   copy-free warm runs);
//! - runs the sort-based dedup **only where an operator can introduce
//!   duplicates**: binding an atom that drops positions (constants or
//!   repeated variables) and projections that drop columns. Joins and
//!   semijoins of duplicate-free inputs are duplicate-free by
//!   construction and skip the sort entirely;
//! - projects **without touching rows** when `keep` equals the column
//!   list, and by straight prefix copies when `keep` is a prefix.
//!
//! Every constructor establishes the invariant that rows are distinct;
//! all operators preserve it.

use crate::database::Database;
use crate::probe::KeyTable;
use crate::query::{Atom, Term, Var};
use std::collections::HashSet;

/// Rows per chunk in the chunked filter path: big enough to amortize the
/// loop split (gather+hash, then probe), small enough that the hash and
/// key scratch buffers stay L1-resident.
const FILTER_CHUNK: usize = 256;

/// A columnar relation: variables as columns, tuples packed row-major
/// into one flat buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlatRelation {
    /// Column variables (distinct).
    pub(crate) vars: Vec<Var>,
    /// Number of rows (tracked explicitly: arity may be 0).
    pub(crate) rows: usize,
    /// `rows * vars.len()` values, row-major.
    pub(crate) data: Vec<u64>,
}

impl FlatRelation {
    /// The relation over no variables containing the empty tuple
    /// (the join identity).
    pub fn unit() -> FlatRelation {
        FlatRelation {
            vars: Vec::new(),
            rows: 1,
            data: Vec::new(),
        }
    }

    /// The empty relation over `vars`.
    pub fn empty(vars: Vec<Var>) -> FlatRelation {
        FlatRelation {
            vars,
            rows: 0,
            data: Vec::new(),
        }
    }

    /// Crate-internal constructor from pre-validated parts: the caller
    /// guarantees `data.len() == rows * vars.len()` and that rows are
    /// distinct (e.g. a filtered copy of an existing relation).
    pub(crate) fn from_parts(vars: Vec<Var>, rows: usize, data: Vec<u64>) -> FlatRelation {
        debug_assert_eq!(data.len(), rows * vars.len());
        FlatRelation { vars, rows, data }
    }

    /// Build from explicit rows (each of length `vars.len()`); duplicate
    /// rows are removed.
    pub fn from_rows(vars: Vec<Var>, tuples: &[Vec<u64>]) -> FlatRelation {
        let arity = vars.len();
        let mut data = Vec::with_capacity(tuples.len() * arity);
        for t in tuples {
            assert_eq!(t.len(), arity, "row length must match arity");
            data.extend_from_slice(t);
        }
        let mut rel = FlatRelation {
            vars,
            rows: tuples.len(),
            data,
        };
        rel.dedup();
        rel
    }

    /// Column variables.
    pub fn vars(&self) -> &[Var] {
        &self.vars
    }

    /// The contiguous row-major buffer: `rows * arity` values, row `i`
    /// occupying `data[i * arity .. (i + 1) * arity]`. This is the
    /// exact layout the snapshot store persists (section-aligned, so a
    /// bulk read restores it without per-tuple work) — byte-for-byte
    /// comparable across a save/load round trip.
    pub fn data(&self) -> &[u64] {
        &self.data
    }

    /// Rebuild a relation from a persisted row-major buffer. The shape
    /// (`data.len() == rows * vars.len()`) and the kernel's
    /// distinct-rows invariant (rows strictly increasing
    /// lexicographically — the canonical order every constructor
    /// establishes) are verified in `O(data.len())`; `None` means the
    /// buffer does not describe a valid relation and must not enter
    /// the kernel.
    pub fn from_flat(vars: Vec<Var>, rows: usize, data: Vec<u64>) -> Option<FlatRelation> {
        let arity = vars.len();
        if arity == 0 {
            if rows > 1 || !data.is_empty() {
                return None;
            }
            return Some(FlatRelation { vars, rows, data });
        }
        if data.len() != rows.checked_mul(arity)? {
            return None;
        }
        for i in 1..rows {
            if data[(i - 1) * arity..i * arity] >= data[i * arity..(i + 1) * arity] {
                return None;
            }
        }
        Some(FlatRelation { vars, rows, data })
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.vars.len()
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows
    }

    /// Is the relation empty (no rows)?
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Row `i` as a slice of the shared buffer.
    pub fn row(&self, i: usize) -> &[u64] {
        debug_assert!(i < self.rows);
        let a = self.vars.len();
        &self.data[i * a..i * a + a]
    }

    /// Iterate over rows as slices.
    pub fn iter(&self) -> impl Iterator<Item = &[u64]> + '_ {
        (0..self.rows).map(move |i| self.row(i))
    }

    /// Copy out as owned tuples (tests and compatibility shims).
    pub fn to_tuples(&self) -> Vec<Vec<u64>> {
        self.iter().map(<[u64]>::to_vec).collect()
    }

    /// Position of `v` among the columns.
    fn col(&self, v: Var) -> Option<usize> {
        self.vars.iter().position(|&w| w == v)
    }

    /// [`FlatRelation::col`] for variables the caller has already
    /// established are present (shared-variable lists are computed by
    /// intersecting both schemas first). Centralizing the panic keeps
    /// the join kernels themselves free of `expect` calls.
    fn col_must(&self, v: Var) -> usize {
        // cqd2-lint: allow(panic-in-hot-path, reason = "callers intersect schemas before asking; absence is a join-kernel bug, not a data condition")
        self.col(v).expect("variable present in schema")
    }

    /// Bind `atom` against `db`: select tuples matching the atom's
    /// constants and repeated variables and project to one column per
    /// distinct variable. The per-position checks are resolved **once**
    /// here; the tuple loop is branch-light. A missing relation (or an
    /// arity mismatch) yields the empty result.
    pub fn bind(atom: &Atom, db: &Database) -> FlatRelation {
        let vars = atom.vars();
        let Some(stored) = db.relation(&atom.relation) else {
            return FlatRelation::empty(vars);
        };
        if stored.arity != atom.terms.len() {
            return FlatRelation::empty(vars);
        }
        // First-occurrence position of each distinct variable: the
        // projection map.
        let first_pos: Vec<usize> = vars
            .iter()
            .map(|v| {
                atom.terms
                    .iter()
                    .position(|t| matches!(t, Term::Var(w) if w == v))
                    // cqd2-lint: allow(panic-in-hot-path, reason = "vars was extracted from these same terms")
                    .expect("var occurs")
            })
            .collect();
        // Per-position selection checks, resolved once.
        enum Check {
            Const(usize, u64),
            SameAs(usize, usize),
        }
        let mut checks: Vec<Check> = Vec::new();
        for (i, term) in atom.terms.iter().enumerate() {
            match term {
                Term::Const(c) => checks.push(Check::Const(i, *c)),
                Term::Var(v) => {
                    // cqd2-lint: allow(panic-in-hot-path, reason = "every variable term appears in the atom's var list")
                    let first = first_pos[vars.iter().position(|w| w == v).expect("var")];
                    if first != i {
                        checks.push(Check::SameAs(i, first));
                    }
                }
            }
        }
        let arity = vars.len();
        let mut data = Vec::with_capacity(stored.tuples.len() * arity);
        let mut rows = 0usize;
        'tup: for t in &stored.tuples {
            for check in &checks {
                match *check {
                    Check::Const(i, c) => {
                        if t[i] != c {
                            continue 'tup;
                        }
                    }
                    Check::SameAs(i, j) => {
                        if t[i] != t[j] {
                            continue 'tup;
                        }
                    }
                }
            }
            data.extend(first_pos.iter().map(|&p| t[p]));
            rows += 1;
        }
        let mut rel = FlatRelation { vars, rows, data };
        // Dropping positions (constants / repeated variables) can merge
        // distinct stored tuples; a full-arity permutation cannot.
        if arity != atom.terms.len() {
            rel.dedup();
        }
        rel
    }

    /// Natural join on shared variables. Schema resolution (shared
    /// variables, key and payload positions) happens once; the build side
    /// is `other`, probed with packed key slices. Duplicate-free inputs
    /// produce a duplicate-free output, so no dedup pass runs.
    pub fn join(&self, other: &FlatRelation) -> FlatRelation {
        let shared: Vec<Var> = self
            .vars
            .iter()
            .copied()
            .filter(|&v| other.col(v).is_some())
            .collect();
        let other_extra: Vec<usize> = (0..other.vars.len())
            .filter(|&i| !shared.contains(&other.vars[i]))
            .collect();
        let mut out_vars = self.vars.clone();
        out_vars.extend(other_extra.iter().map(|&i| other.vars[i]));
        let out_arity = out_vars.len();

        if shared.is_empty() {
            // Cartesian product (also covers joins with `unit`).
            let mut data = Vec::with_capacity(self.rows * other.rows * out_arity);
            for r in self.iter() {
                for s in other.iter() {
                    data.extend_from_slice(r);
                    data.extend(other_extra.iter().map(|&p| s[p]));
                }
            }
            return FlatRelation {
                vars: out_vars,
                rows: self.rows * other.rows,
                data,
            };
        }

        let self_key: Vec<usize> = shared.iter().map(|&v| self.col_must(v)).collect();
        let other_key: Vec<usize> = shared.iter().map(|&v| other.col_must(v)).collect();
        check_row_index_fits(other.rows);
        // Build side indexed once by a flat chained table ([`KeyTable`]:
        // no SipHash, no per-key boxing); the probe side packs keys into
        // a reusable scratch buffer and walks ascending-row-id chains, so
        // match order (and output order) equals the insertion order the
        // previous HashMap index produced.
        let table = KeyTable::build(other, &other_key);
        let mut data = Vec::new();
        let mut rows = 0usize;
        let mut scratch: Vec<u64> = Vec::with_capacity(shared.len());
        for r in self.iter() {
            pack_key(&mut scratch, r, &self_key);
            for j in table.matches(&scratch) {
                let s = other.row(j as usize);
                data.extend_from_slice(r);
                data.extend(other_extra.iter().map(|&p| s[p]));
                rows += 1;
            }
        }
        FlatRelation {
            vars: out_vars,
            rows,
            data,
        }
    }

    /// Semijoin: keep the rows of `self` that join with some row of
    /// `other`. A thin wrapper over [`FlatRelation::semijoin_filter`]
    /// that clones `self` when every row survives.
    pub fn semijoin(&self, other: &FlatRelation) -> FlatRelation {
        match self.semijoin_filter(other) {
            Some(filtered) => filtered,
            None => self.clone(),
        }
    }

    /// Chunked semijoin filter: `Some(filtered)` with the surviving rows,
    /// or **`None` when every row survives** — the caller can keep using
    /// `self` unchanged, paying no copy (the bag-tree overlay's warm runs
    /// live on this).
    ///
    /// The filter runs in fixed-size chunks: key columns are gathered and
    /// hashed in a branch-free loop, survivors recorded in a selection
    /// bitmask, and output rows materialized only afterwards (and only if
    /// something dropped).
    pub fn semijoin_filter(&self, other: &FlatRelation) -> Option<FlatRelation> {
        let shared: Vec<Var> = self
            .vars
            .iter()
            .copied()
            .filter(|&v| other.col(v).is_some())
            .collect();
        if shared.is_empty() {
            // Vacuous sharing: a nonempty `other` keeps everything, an
            // empty one drops everything.
            return if other.is_empty() && !self.is_empty() {
                Some(FlatRelation::empty(self.vars.clone()))
            } else {
                None
            };
        }
        let self_key: Vec<usize> = shared.iter().map(|&v| self.col_must(v)).collect();
        let other_key: Vec<usize> = shared.iter().map(|&v| other.col_must(v)).collect();
        let table = KeyTable::build(other, &other_key);
        self.semijoin_filter_with(&table, &self_key)
    }

    /// [`FlatRelation::semijoin_filter`] against a prebuilt probe table
    /// (`table` keyed on the build side's shared columns, `self_key` the
    /// matching columns of `self`, same variable order). Lets tree passes
    /// reuse one table across runs when the build side is unchanged.
    pub(crate) fn semijoin_filter_with(
        &self,
        table: &KeyTable,
        self_key: &[usize],
    ) -> Option<FlatRelation> {
        debug_assert_eq!(table.key_width(), self_key.len());
        let n = self.rows;
        if n == 0 {
            return None; // empty stays empty: unchanged
        }
        let arity = self.arity();
        let k = self_key.len();
        let mut mask = vec![0u64; n.div_ceil(64)];
        let mut kept = 0usize;
        let mut hashes = [0u64; FILTER_CHUNK];
        let mut keys = vec![0u64; FILTER_CHUNK * k];
        let mut base = 0usize;
        while base < n {
            let m = FILTER_CHUNK.min(n - base);
            // Gather + hash: straight-line arithmetic over the strided
            // buffer, no data-dependent branches.
            if k == 1 {
                let c = self_key[0];
                for (j, (key, hash)) in keys[..m].iter_mut().zip(&mut hashes[..m]).enumerate() {
                    let v = self.data[(base + j) * arity + c];
                    *key = v;
                    *hash = crate::probe::hash1(v);
                }
            } else {
                for j in 0..m {
                    let row = &self.data[(base + j) * arity..(base + j + 1) * arity];
                    for (t, &c) in self_key.iter().enumerate() {
                        keys[j * k + t] = row[c];
                    }
                    hashes[j] = crate::probe::hash_key(&keys[j * k..j * k + k]);
                }
            }
            // Probe: set survivor bits in the selection mask.
            for j in 0..m {
                if table.contains_hashed(hashes[j], &keys[j * k..j * k + k]) {
                    let i = base + j;
                    mask[i >> 6] |= 1u64 << (i & 63);
                    kept += 1;
                }
            }
            base += m;
        }
        if kept == n {
            return None; // all rows survive: unchanged
        }
        let mut data = Vec::with_capacity(kept * arity);
        for i in 0..n {
            if mask[i >> 6] >> (i & 63) & 1 == 1 {
                data.extend_from_slice(&self.data[i * arity..(i + 1) * arity]);
            }
        }
        Some(FlatRelation::from_parts(self.vars.clone(), kept, data))
    }

    /// Reference semijoin on std hashing (`HashSet`, SipHash): the
    /// implementation [`FlatRelation::semijoin`] replaced, kept for
    /// differential tests and as the baseline the `relation_ops` bench
    /// gates the chunked path against.
    pub fn semijoin_reference(&self, other: &FlatRelation) -> FlatRelation {
        let shared: Vec<Var> = self
            .vars
            .iter()
            .copied()
            .filter(|&v| other.col(v).is_some())
            .collect();
        if shared.is_empty() {
            return if other.is_empty() {
                FlatRelation::empty(self.vars.clone())
            } else {
                self.clone()
            };
        }
        let self_key: Vec<usize> = shared.iter().map(|&v| self.col_must(v)).collect();
        let other_key: Vec<usize> = shared.iter().map(|&v| other.col_must(v)).collect();
        let mut data = Vec::new();
        let mut rows = 0usize;
        if shared.len() == 1 {
            let (sp, op) = (self_key[0], other_key[0]);
            let keys: HashSet<u64> = other.iter().map(|s| s[op]).collect();
            for r in self.iter() {
                if keys.contains(&r[sp]) {
                    data.extend_from_slice(r);
                    rows += 1;
                }
            }
        } else {
            let mut keys: HashSet<Box<[u64]>> = HashSet::with_capacity(other.rows);
            let mut scratch: Vec<u64> = Vec::with_capacity(shared.len());
            for s in other.iter() {
                pack_key(&mut scratch, s, &other_key);
                if !keys.contains(scratch.as_slice()) {
                    keys.insert(scratch.as_slice().into());
                }
            }
            for r in self.iter() {
                pack_key(&mut scratch, r, &self_key);
                if keys.contains(scratch.as_slice()) {
                    data.extend_from_slice(r);
                    rows += 1;
                }
            }
        }
        FlatRelation {
            vars: self.vars.clone(),
            rows,
            data,
        }
    }

    /// Project to `keep` (order taken from `keep`; unknown variables are
    /// an error). Keeping every column in place is zero-copy per row (a
    /// buffer clone); a strict prefix copies contiguous slices; only
    /// projections that *drop* columns pay the dedup sort.
    pub fn project(&self, keep: &[Var]) -> FlatRelation {
        let pos: Vec<usize> = keep.iter().map(|&v| self.col_must(v)).collect();
        if keep == self.vars.as_slice() {
            return self.clone();
        }
        let arity = self.arity();
        let k = keep.len();
        let mut out = FlatRelation {
            vars: keep.to_vec(),
            rows: self.rows,
            data: Vec::with_capacity(self.rows * k),
        };
        if pos.iter().enumerate().all(|(i, &p)| i == p) {
            // Prefix projection: straight per-row prefix copies.
            for r in self.iter() {
                out.data.extend_from_slice(&r[..k]);
            }
        } else {
            for r in self.iter() {
                out.data.extend(pos.iter().map(|&p| r[p]));
            }
        }
        // Only a *permutation* of the columns is guaranteed to keep rows
        // distinct; dropping a column — or repeating one while another
        // is dropped — can merge rows and needs the dedup.
        let mut hit = vec![false; arity];
        let is_permutation =
            k == arity && pos.iter().all(|&p| !std::mem::replace(&mut hit[p], true));
        if !is_permutation {
            out.dedup();
        }
        out
    }

    /// Sort rows lexicographically and remove duplicates. Operators call
    /// this only where duplicates can actually arise; it is public so the
    /// benches can measure it in isolation.
    pub fn dedup(&mut self) {
        let a = self.vars.len();
        if a == 0 {
            self.rows = self.rows.min(1);
            return;
        }
        if self.rows <= 1 {
            return;
        }
        check_row_index_fits(self.rows);
        let mut idx: Vec<u32> = (0..self.rows as u32).collect();
        let data = &self.data;
        idx.sort_unstable_by(|&i, &j| {
            data[i as usize * a..i as usize * a + a].cmp(&data[j as usize * a..j as usize * a + a])
        });
        let mut out: Vec<u64> = Vec::with_capacity(self.data.len());
        for &i in &idx {
            let row = &self.data[i as usize * a..i as usize * a + a];
            if out.len() < a || &out[out.len() - a..] != row {
                out.extend_from_slice(row);
            }
        }
        self.rows = out.len() / a;
        self.data = out;
    }
}

/// Pack the key columns of `row` into `scratch` (cleared first).
fn pack_key(scratch: &mut Vec<u64>, row: &[u64], pos: &[usize]) {
    scratch.clear();
    scratch.extend(pos.iter().map(|&p| row[p]));
}

/// Row indices inside hash buckets and the dedup permutation are `u32`
/// (halving index-buffer memory); fail loudly rather than silently
/// truncating on relations beyond 2^32 rows.
pub(crate) fn check_row_index_fits(rows: usize) {
    assert!(
        rows <= u32::MAX as usize,
        "FlatRelation limited to 2^32 rows (got {rows})"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::ConjunctiveQuery;

    fn v(i: u32) -> Var {
        Var(i)
    }

    fn rel(vars: &[u32], tuples: &[&[u64]]) -> FlatRelation {
        FlatRelation::from_rows(
            vars.iter().map(|&i| v(i)).collect(),
            &tuples.iter().map(|t| t.to_vec()).collect::<Vec<_>>(),
        )
    }

    fn sorted_tuples(r: &FlatRelation) -> Vec<Vec<u64>> {
        let mut t = r.to_tuples();
        t.sort_unstable();
        t
    }

    #[test]
    fn layout_and_accessors() {
        let r = rel(&[0, 1], &[&[1, 2], &[3, 4]]);
        assert_eq!(r.arity(), 2);
        assert_eq!(r.len(), 2);
        assert_eq!(r.row(0).len(), 2);
        assert_eq!(r.iter().count(), 2);
    }

    #[test]
    fn flat_buffer_round_trips_through_from_flat() {
        let r = rel(&[0, 1], &[&[3, 4], &[1, 2]]);
        // from_rows dedup-sorted the rows, so the buffer is canonical.
        assert_eq!(r.data(), &[1, 2, 3, 4]);
        let back = FlatRelation::from_flat(r.vars().to_vec(), r.len(), r.data().to_vec())
            .expect("canonical buffer round-trips");
        assert_eq!(back, r);
        // Shape mismatch, unsorted rows, and duplicates are all rejected.
        assert!(FlatRelation::from_flat(vec![v(0), v(1)], 2, vec![1, 2, 3]).is_none());
        assert!(FlatRelation::from_flat(vec![v(0), v(1)], 2, vec![3, 4, 1, 2]).is_none());
        assert!(FlatRelation::from_flat(vec![v(0)], 2, vec![5, 5]).is_none());
        // Nullary relations: the empty tuple at most once, no buffer.
        assert!(FlatRelation::from_flat(vec![], 1, vec![]).is_some());
        assert!(FlatRelation::from_flat(vec![], 2, vec![]).is_none());
    }

    #[test]
    fn from_rows_dedups() {
        let r = rel(&[0], &[&[2], &[1], &[2]]);
        assert_eq!(sorted_tuples(&r), vec![vec![1], vec![2]]);
    }

    #[test]
    fn bind_handles_constants_and_repeats() {
        let mut db = Database::new();
        db.insert_all(
            "R",
            &[vec![1, 1, 5], vec![1, 2, 5], vec![2, 2, 7], vec![3, 3, 5]],
        );
        let q = ConjunctiveQuery::parse(&[("R", &["?x", "?x", "5"])]);
        let r = FlatRelation::bind(&q.atoms[0], &db);
        assert_eq!(r.arity(), 1);
        assert_eq!(sorted_tuples(&r), vec![vec![1], vec![3]]);
    }

    #[test]
    fn bind_missing_or_mismatched_relation_is_empty() {
        let q = ConjunctiveQuery::parse(&[("R", &["?x"])]);
        assert!(FlatRelation::bind(&q.atoms[0], &Database::new()).is_empty());
        let mut db = Database::new();
        db.insert("R", &[1, 2]); // arity 2 vs unary atom
        assert!(FlatRelation::bind(&q.atoms[0], &db).is_empty());
    }

    #[test]
    fn join_on_shared_variable() {
        let a = rel(&[0, 1], &[&[1, 2], &[2, 3]]);
        let b = rel(&[1, 2], &[&[2, 10], &[2, 11], &[9, 12]]);
        let j = a.join(&b);
        assert_eq!(j.vars(), &[v(0), v(1), v(2)]);
        assert_eq!(sorted_tuples(&j), vec![vec![1, 2, 10], vec![1, 2, 11]]);
    }

    #[test]
    fn join_multi_column_key() {
        let a = rel(&[0, 1, 2], &[&[1, 2, 7], &[1, 3, 8], &[2, 2, 9]]);
        let b = rel(&[0, 1, 3], &[&[1, 2, 70], &[1, 2, 71], &[2, 3, 72]]);
        let j = a.join(&b);
        assert_eq!(j.vars(), &[v(0), v(1), v(2), v(3)]);
        assert_eq!(
            sorted_tuples(&j),
            vec![vec![1, 2, 7, 70], vec![1, 2, 7, 71]]
        );
    }

    #[test]
    fn join_without_shared_is_product() {
        let a = rel(&[0], &[&[1], &[2]]);
        let b = rel(&[1], &[&[7], &[8]]);
        assert_eq!(a.join(&b).len(), 4);
    }

    #[test]
    fn join_with_unit() {
        let a = rel(&[0], &[&[1]]);
        assert_eq!(a.join(&FlatRelation::unit()), a);
        assert_eq!(
            sorted_tuples(&FlatRelation::unit().join(&a)),
            sorted_tuples(&a)
        );
    }

    #[test]
    fn unit_and_empty_edge_cases() {
        let u = FlatRelation::unit();
        assert_eq!(u.len(), 1);
        assert_eq!(u.arity(), 0);
        assert_eq!(u.join(&u).len(), 1);
        let e = FlatRelation::empty(vec![v(0)]);
        assert!(e.join(&u).is_empty());
        assert!(u.join(&e).is_empty());
    }

    #[test]
    fn project_keep_all_and_prefix_and_scatter() {
        let a = rel(&[0, 1, 2], &[&[1, 2, 3], &[1, 2, 4]]);
        assert_eq!(a.project(&[v(0), v(1), v(2)]), a);
        let p = a.project(&[v(0), v(1)]);
        assert_eq!(sorted_tuples(&p), vec![vec![1, 2]]);
        let s = a.project(&[v(2), v(0)]);
        assert_eq!(sorted_tuples(&s), vec![vec![3, 1], vec![4, 1]]);
    }

    #[test]
    fn project_repeating_a_column_still_dedups() {
        // keep.len() == arity but not a permutation: repeating x while
        // dropping y merges the two rows; the distinct-rows invariant
        // must survive.
        let a = rel(&[0, 1], &[&[1, 2], &[1, 3]]);
        let p = a.project(&[v(0), v(0)]);
        assert_eq!(sorted_tuples(&p), vec![vec![1, 1]]);
    }

    #[test]
    fn semijoin_filters() {
        let a = rel(&[0, 1], &[&[1, 2], &[2, 3]]);
        let b = rel(&[1], &[&[2]]);
        assert_eq!(sorted_tuples(&a.semijoin(&b)), vec![vec![1, 2]]);
        // Disjoint semijoin: nonempty other keeps everything.
        let c = rel(&[9], &[&[5]]);
        assert_eq!(a.semijoin(&c).len(), 2);
        // Disjoint semijoin with empty other: empties.
        let e = FlatRelation::empty(vec![v(9)]);
        assert!(a.semijoin(&e).is_empty());
        // Multi-column semijoin key.
        let d = rel(&[0, 1], &[&[2, 3], &[9, 9]]);
        assert_eq!(sorted_tuples(&a.semijoin(&d)), vec![vec![2, 3]]);
    }

    #[test]
    fn semijoin_filter_reports_unchanged_as_none() {
        let a = rel(&[0, 1], &[&[1, 2], &[2, 3]]);
        // Every row survives: no copy, `None`.
        let all = rel(&[0], &[&[1], &[2]]);
        assert!(a.semijoin_filter(&all).is_none());
        // Some row drops: a filtered copy.
        let some = rel(&[0], &[&[1]]);
        let f = a.semijoin_filter(&some).unwrap();
        assert_eq!(sorted_tuples(&f), vec![vec![1, 2]]);
        // Vacuous sharing: nonempty other is unchanged, empty other
        // empties a nonempty self.
        let disjoint = rel(&[9], &[&[5]]);
        assert!(a.semijoin_filter(&disjoint).is_none());
        let e = FlatRelation::empty(vec![v(9)]);
        assert!(a.semijoin_filter(&e).unwrap().is_empty());
        // Empty self is unchanged by anything.
        let es = FlatRelation::empty(vec![v(0)]);
        assert!(es.semijoin_filter(&all).is_none());
        assert!(es.semijoin_filter(&e).is_none());
    }

    #[test]
    fn semijoin_matches_reference_across_shapes() {
        // The chunked KeyTable path and the std-hash reference must be
        // bit-identical (content *and* row order) on single- and
        // multi-column keys, including above one chunk.
        let mut xs = 0x9E3779B97F4A7C15u64;
        let mut step = move || {
            xs ^= xs << 13;
            xs ^= xs >> 7;
            xs ^= xs << 17;
            xs
        };
        for (rows, dom) in [(3usize, 4u64), (700, 40), (1000, 9)] {
            let left: Vec<Vec<u64>> = (0..rows)
                .map(|_| vec![step() % dom, step() % dom, step() % dom])
                .collect();
            let right1: Vec<Vec<u64>> = (0..rows / 4 + 1).map(|_| vec![step() % dom]).collect();
            let right2: Vec<Vec<u64>> = (0..rows / 2 + 1)
                .map(|_| vec![step() % dom, step() % dom])
                .collect();
            let a = FlatRelation::from_rows(vec![v(0), v(1), v(2)], &left);
            let single = FlatRelation::from_rows(vec![v(1)], &right1);
            let multi = FlatRelation::from_rows(vec![v(0), v(2)], &right2);
            assert_eq!(a.semijoin(&single), a.semijoin_reference(&single));
            assert_eq!(a.semijoin(&multi), a.semijoin_reference(&multi));
        }
    }

    #[test]
    fn dedup_is_idempotent_and_total() {
        let mut r = FlatRelation {
            vars: vec![v(0), v(1)],
            rows: 4,
            data: vec![3, 4, 1, 2, 3, 4, 1, 2],
        };
        r.dedup();
        assert_eq!(r.len(), 2);
        assert_eq!(sorted_tuples(&r), vec![vec![1, 2], vec![3, 4]]);
        r.dedup();
        assert_eq!(r.len(), 2);
    }
}
