//! Databases: sets of ground relational atoms, stored per relation.

use std::collections::BTreeMap;

/// A stored relation: a set of tuples of a fixed arity.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct StoredRelation {
    /// Arity (all tuples have this length).
    pub arity: usize,
    /// Distinct tuples.
    pub tuples: Vec<Vec<u64>>,
}

/// A database: named relations over `u64` constants.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Database {
    relations: BTreeMap<String, StoredRelation>,
}

impl Database {
    /// Empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert a ground atom. Creates the relation on first use; panics on
    /// arity mismatch (schema error). Duplicate tuples are ignored.
    pub fn insert(&mut self, relation: &str, tuple: &[u64]) {
        let rel = self
            .relations
            .entry(relation.to_string())
            .or_insert_with(|| StoredRelation {
                arity: tuple.len(),
                tuples: Vec::new(),
            });
        assert_eq!(
            rel.arity,
            tuple.len(),
            "arity mismatch for relation {relation}"
        );
        if !rel.tuples.iter().any(|t| t == tuple) {
            rel.tuples.push(tuple.to_vec());
        }
    }

    /// Bulk insert.
    pub fn insert_all(&mut self, relation: &str, tuples: &[Vec<u64>]) {
        for t in tuples {
            self.insert(relation, t);
        }
    }

    /// The relation, if present.
    pub fn relation(&self, name: &str) -> Option<&StoredRelation> {
        self.relations.get(name)
    }

    /// Iterate over `(name, relation)` pairs.
    pub fn relations(&self) -> impl Iterator<Item = (&str, &StoredRelation)> {
        self.relations.iter().map(|(n, r)| (n.as_str(), r))
    }

    /// Total number of tuples (`‖D‖` up to constant factors).
    pub fn size(&self) -> usize {
        self.relations.values().map(|r| r.tuples.len()).sum()
    }

    /// The set of all constants appearing anywhere (the active domain).
    pub fn active_domain(&self) -> Vec<u64> {
        let mut d: Vec<u64> = self
            .relations
            .values()
            .flat_map(|r| r.tuples.iter().flatten().copied())
            .collect();
        d.sort_unstable();
        d.dedup();
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_query() {
        let mut db = Database::new();
        db.insert("R", &[1, 2]);
        db.insert("R", &[2, 3]);
        db.insert("R", &[1, 2]); // duplicate
        assert_eq!(db.relation("R").unwrap().tuples.len(), 2);
        assert_eq!(db.size(), 2);
        assert!(db.relation("S").is_none());
        assert_eq!(db.active_domain(), vec![1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_mismatch_panics() {
        let mut db = Database::new();
        db.insert("R", &[1, 2]);
        db.insert("R", &[1]);
    }
}
