//! Databases: sets of ground relational atoms, stored per relation.
//!
//! Relations are held behind [`Arc`]s so snapshots produced by the
//! delta kernel ([`crate::delta`]) share untouched relations
//! structurally: applying a small batch of fact changes to one relation
//! clones one `Arc` per *untouched* relation and rebuilds only the
//! touched ones.

use std::collections::BTreeMap;
use std::sync::Arc;

/// A stored relation: a set of tuples of a fixed arity.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct StoredRelation {
    /// Arity (all tuples have this length).
    pub arity: usize,
    /// Distinct tuples in lexicographic order (see [`Database::insert`]).
    pub tuples: Vec<Vec<u64>>,
}

/// A database: named relations over `u64` constants.
///
/// Invariant: every relation's tuples are **distinct** and match the
/// relation's arity. [`Database::insert`] enforces it, and the manual
/// `Deserialize` impl below re-establishes it for data loaded from
/// outside — the columnar kernel ([`crate::flat::FlatRelation`]) skips
/// dedup passes on the strength of this invariant.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize))]
pub struct Database {
    relations: BTreeMap<String, Arc<StoredRelation>>,
}

#[cfg(feature = "serde")]
impl serde::Deserialize for Database {
    /// Mirrors the derived format (`{"relations": …}`) but normalizes on
    /// the way in: duplicate tuples are dropped and arity-mismatched
    /// tuples are rejected, so deserialized databases uphold the same
    /// invariants as ones built through [`Database::insert`].
    fn from_value(v: &serde::Value) -> Result<Database, serde::Error> {
        let m = v
            .as_map()
            .ok_or_else(|| serde::Error::new("expected map for Database"))?;
        let mut relations: BTreeMap<String, StoredRelation> = serde::Deserialize::from_value(
            serde::map_get(m, "relations")
                .ok_or_else(|| serde::Error::new("missing field `relations` of Database"))?,
        )?;
        for (name, rel) in &mut relations {
            if rel.tuples.iter().any(|t| t.len() != rel.arity) {
                return Err(serde::Error::new(format!(
                    "relation `{name}`: tuple length does not match arity {}",
                    rel.arity
                )));
            }
            rel.tuples.sort_unstable();
            rel.tuples.dedup();
        }
        Ok(Database {
            relations: relations
                .into_iter()
                .map(|(name, rel)| (name, Arc::new(rel)))
                .collect(),
        })
    }
}

/// Why [`Database::insert_sorted_relation`] rejected a bulk load. Every
/// variant names the offending relation (and row, where one exists) so
/// loaders can surface a precise diagnostic instead of a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BulkLoadError {
    /// The relation name is already present — bulk loads install whole
    /// relations, they never merge into existing ones.
    DuplicateRelation(String),
    /// A tuple's length does not match the declared arity.
    ArityMismatch {
        /// The relation being installed.
        relation: String,
        /// 0-based index of the offending tuple.
        row: usize,
        /// The declared arity.
        expected: usize,
        /// The tuple's actual length.
        got: usize,
    },
    /// Adjacent tuples are out of order or equal: the input is not the
    /// sorted, distinct form the database invariant requires.
    NotSorted {
        /// The relation being installed.
        relation: String,
        /// 0-based index of the tuple that is ≤ its predecessor.
        row: usize,
    },
}

impl std::fmt::Display for BulkLoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BulkLoadError::DuplicateRelation(name) => {
                write!(f, "relation `{name}` is already present")
            }
            BulkLoadError::ArityMismatch {
                relation,
                row,
                expected,
                got,
            } => write!(
                f,
                "relation `{relation}` row {row}: tuple length {got} does not match arity {expected}"
            ),
            BulkLoadError::NotSorted { relation, row } => write!(
                f,
                "relation `{relation}` row {row}: tuples are not sorted and distinct"
            ),
        }
    }
}

impl std::error::Error for BulkLoadError {}

impl Database {
    /// Empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert a ground atom. Creates the relation on first use; panics on
    /// arity mismatch (schema error). Duplicate tuples are ignored.
    ///
    /// Tuples are kept in sorted order (binary-search insertion), so
    /// relation contents are canonical regardless of insertion order —
    /// serialize/deserialize roundtrips compare equal — and duplicate
    /// detection costs `O(log n)` probes instead of a linear scan.
    pub fn insert(&mut self, relation: &str, tuple: &[u64]) {
        let rel = self
            .relations
            .entry(relation.to_string())
            .or_insert_with(|| {
                Arc::new(StoredRelation {
                    arity: tuple.len(),
                    tuples: Vec::new(),
                })
            });
        assert_eq!(
            rel.arity,
            tuple.len(),
            "arity mismatch for relation {relation}"
        );
        let rel = Arc::make_mut(rel);
        if let Err(pos) = rel.tuples.binary_search_by(|t| t.as_slice().cmp(tuple)) {
            rel.tuples.insert(pos, tuple.to_vec());
        }
    }

    /// Bulk insert.
    pub fn insert_all(&mut self, relation: &str, tuples: &[Vec<u64>]) {
        for t in tuples {
            self.insert(relation, t);
        }
    }

    /// Install a whole relation from tuples that are **already sorted
    /// and distinct** — the canonical order [`Database::insert`]
    /// maintains. The claim is *verified* (one `O(n)` adjacent-pair
    /// pass plus per-tuple arity checks), never trusted: a violation is
    /// a typed [`BulkLoadError`], not a silently broken invariant and
    /// not a panic. This is the bulk-load path the snapshot store uses
    /// — it skips the per-tuple binary-search insertion entirely, so
    /// loading `n` pre-sorted tuples costs `O(n)` instead of `O(n²)`
    /// worst-case element moves.
    pub fn insert_sorted_relation(
        &mut self,
        relation: &str,
        arity: usize,
        tuples: Vec<Vec<u64>>,
    ) -> Result<(), BulkLoadError> {
        if self.relations.contains_key(relation) {
            return Err(BulkLoadError::DuplicateRelation(relation.to_string()));
        }
        for (row, t) in tuples.iter().enumerate() {
            if t.len() != arity {
                return Err(BulkLoadError::ArityMismatch {
                    relation: relation.to_string(),
                    row,
                    expected: arity,
                    got: t.len(),
                });
            }
        }
        for row in 1..tuples.len() {
            if tuples[row - 1] >= tuples[row] {
                return Err(BulkLoadError::NotSorted {
                    relation: relation.to_string(),
                    row,
                });
            }
        }
        self.relations
            .insert(relation.to_string(), Arc::new(StoredRelation { arity, tuples }));
        Ok(())
    }

    /// The relation, if present.
    pub fn relation(&self, name: &str) -> Option<&StoredRelation> {
        self.relations.get(name).map(Arc::as_ref)
    }

    /// The relation's shared handle, if present. Two snapshots related
    /// by a delta share untouched relations — `Arc::ptr_eq` on these
    /// handles is the structural-sharing witness the update plane's
    /// tests assert.
    pub fn relation_arc(&self, name: &str) -> Option<&Arc<StoredRelation>> {
        self.relations.get(name)
    }

    /// Iterate over `(name, relation)` pairs.
    pub fn relations(&self) -> impl Iterator<Item = (&str, &StoredRelation)> {
        self.relations.iter().map(|(n, r)| (n.as_str(), r.as_ref()))
    }

    /// Iterate over `(name, shared handle)` pairs — the delta kernel's
    /// view, where untouched handles are cloned into the next snapshot.
    pub fn relation_arcs(&self) -> impl Iterator<Item = (&str, &Arc<StoredRelation>)> {
        self.relations.iter().map(|(n, r)| (n.as_str(), r))
    }

    /// Assemble a database from shared relation handles. The caller
    /// vouches that every relation upholds the sorted-distinct invariant
    /// — this is the delta kernel's publish path, whose merge produces
    /// exactly that form (and whose untouched handles came out of a
    /// database that already upheld it).
    pub(crate) fn from_shared(relations: BTreeMap<String, Arc<StoredRelation>>) -> Database {
        Database { relations }
    }

    /// Total number of tuples (`‖D‖` up to constant factors).
    pub fn size(&self) -> usize {
        self.relations.values().map(|r| r.tuples.len()).sum()
    }

    /// The set of all constants appearing anywhere (the active domain).
    pub fn active_domain(&self) -> Vec<u64> {
        let mut d: Vec<u64> = self
            .relations
            .values()
            .flat_map(|r| r.tuples.iter().flatten().copied())
            .collect();
        d.sort_unstable();
        d.dedup();
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_query() {
        let mut db = Database::new();
        db.insert("R", &[1, 2]);
        db.insert("R", &[2, 3]);
        db.insert("R", &[1, 2]); // duplicate
        assert_eq!(db.relation("R").unwrap().tuples.len(), 2);
        assert_eq!(db.size(), 2);
        assert!(db.relation("S").is_none());
        assert_eq!(db.active_domain(), vec![1, 2, 3]);
    }

    #[test]
    fn bulk_sorted_load_verifies_its_invariants() {
        let mut db = Database::new();
        db.insert_sorted_relation("R", 2, vec![vec![1, 2], vec![1, 3], vec![2, 0]])
            .unwrap();
        assert_eq!(db.relation("R").unwrap().tuples.len(), 3);
        // A bulk-loaded relation is indistinguishable from an
        // insert-built one.
        let mut reference = Database::new();
        reference.insert_all("R", &[vec![2, 0], vec![1, 3], vec![1, 2]]);
        assert_eq!(db, reference);

        // Existing names, arity mismatches, out-of-order and duplicate
        // tuples are all typed rejections.
        match db.insert_sorted_relation("R", 2, vec![]) {
            Err(BulkLoadError::DuplicateRelation(name)) => assert_eq!(name, "R"),
            other => panic!("{other:?}"),
        }
        match db.insert_sorted_relation("S", 2, vec![vec![1]]) {
            Err(BulkLoadError::ArityMismatch { row: 0, got: 1, .. }) => {}
            other => panic!("{other:?}"),
        }
        match db.insert_sorted_relation("S", 1, vec![vec![2], vec![1]]) {
            Err(BulkLoadError::NotSorted { row: 1, .. }) => {}
            other => panic!("{other:?}"),
        }
        match db.insert_sorted_relation("S", 1, vec![vec![1], vec![1]]) {
            Err(BulkLoadError::NotSorted { row: 1, .. }) => {}
            other => panic!("{other:?}"),
        }
        // Failed loads install nothing; empty relations are fine.
        assert!(db.relation("S").is_none());
        db.insert_sorted_relation("S", 3, vec![]).unwrap();
        assert_eq!(db.relation("S").unwrap().arity, 3);
        assert!(db.relation("S").unwrap().tuples.is_empty());
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_mismatch_panics() {
        let mut db = Database::new();
        db.insert("R", &[1, 2]);
        db.insert("R", &[1]);
    }

    #[cfg(feature = "serde")]
    #[test]
    fn deserialize_normalizes_duplicates_and_rejects_bad_arity() {
        // Out-of-order insertion: the sorted-insert invariant makes the
        // stored form canonical, so the roundtrip compares equal.
        let mut db = Database::new();
        db.insert("R", &[3, 4]);
        db.insert("R", &[1, 2]);
        assert_eq!(
            db.relation("R").unwrap().tuples,
            vec![vec![1, 2], vec![3, 4]]
        );
        let back: Database = serde::json::from_str(&serde::json::to_string(&db)).unwrap();
        assert_eq!(back, db);
        // Hand-written payload with a duplicate tuple: deduped on load,
        // so the kernel's distinct-rows invariant holds for loaded data.
        let dup = r#"{"relations": {"R": {"arity": 2, "tuples": [[1, 2], [1, 2], [3, 4]]}}}"#;
        let loaded: Database = serde::json::from_str(dup).unwrap();
        assert_eq!(loaded.relation("R").unwrap().tuples.len(), 2);
        // Arity-mismatched tuples are a schema error, not a panic later.
        let bad = r#"{"relations": {"R": {"arity": 2, "tuples": [[1, 2, 3]]}}}"#;
        assert!(serde::json::from_str::<Database>(bad).is_err());
    }
}
