//! Databases: sets of ground relational atoms, stored per relation.

use std::collections::BTreeMap;

/// A stored relation: a set of tuples of a fixed arity.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct StoredRelation {
    /// Arity (all tuples have this length).
    pub arity: usize,
    /// Distinct tuples in lexicographic order (see [`Database::insert`]).
    pub tuples: Vec<Vec<u64>>,
}

/// A database: named relations over `u64` constants.
///
/// Invariant: every relation's tuples are **distinct** and match the
/// relation's arity. [`Database::insert`] enforces it, and the manual
/// `Deserialize` impl below re-establishes it for data loaded from
/// outside — the columnar kernel ([`crate::flat::FlatRelation`]) skips
/// dedup passes on the strength of this invariant.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize))]
pub struct Database {
    relations: BTreeMap<String, StoredRelation>,
}

#[cfg(feature = "serde")]
impl serde::Deserialize for Database {
    /// Mirrors the derived format (`{"relations": …}`) but normalizes on
    /// the way in: duplicate tuples are dropped and arity-mismatched
    /// tuples are rejected, so deserialized databases uphold the same
    /// invariants as ones built through [`Database::insert`].
    fn from_value(v: &serde::Value) -> Result<Database, serde::Error> {
        let m = v
            .as_map()
            .ok_or_else(|| serde::Error::new("expected map for Database"))?;
        let mut relations: BTreeMap<String, StoredRelation> = serde::Deserialize::from_value(
            serde::map_get(m, "relations")
                .ok_or_else(|| serde::Error::new("missing field `relations` of Database"))?,
        )?;
        for (name, rel) in &mut relations {
            if rel.tuples.iter().any(|t| t.len() != rel.arity) {
                return Err(serde::Error::new(format!(
                    "relation `{name}`: tuple length does not match arity {}",
                    rel.arity
                )));
            }
            rel.tuples.sort_unstable();
            rel.tuples.dedup();
        }
        Ok(Database { relations })
    }
}

impl Database {
    /// Empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert a ground atom. Creates the relation on first use; panics on
    /// arity mismatch (schema error). Duplicate tuples are ignored.
    ///
    /// Tuples are kept in sorted order (binary-search insertion), so
    /// relation contents are canonical regardless of insertion order —
    /// serialize/deserialize roundtrips compare equal — and duplicate
    /// detection costs `O(log n)` probes instead of a linear scan.
    pub fn insert(&mut self, relation: &str, tuple: &[u64]) {
        let rel = self
            .relations
            .entry(relation.to_string())
            .or_insert_with(|| StoredRelation {
                arity: tuple.len(),
                tuples: Vec::new(),
            });
        assert_eq!(
            rel.arity,
            tuple.len(),
            "arity mismatch for relation {relation}"
        );
        if let Err(pos) = rel.tuples.binary_search_by(|t| t.as_slice().cmp(tuple)) {
            rel.tuples.insert(pos, tuple.to_vec());
        }
    }

    /// Bulk insert.
    pub fn insert_all(&mut self, relation: &str, tuples: &[Vec<u64>]) {
        for t in tuples {
            self.insert(relation, t);
        }
    }

    /// The relation, if present.
    pub fn relation(&self, name: &str) -> Option<&StoredRelation> {
        self.relations.get(name)
    }

    /// Iterate over `(name, relation)` pairs.
    pub fn relations(&self) -> impl Iterator<Item = (&str, &StoredRelation)> {
        self.relations.iter().map(|(n, r)| (n.as_str(), r))
    }

    /// Total number of tuples (`‖D‖` up to constant factors).
    pub fn size(&self) -> usize {
        self.relations.values().map(|r| r.tuples.len()).sum()
    }

    /// The set of all constants appearing anywhere (the active domain).
    pub fn active_domain(&self) -> Vec<u64> {
        let mut d: Vec<u64> = self
            .relations
            .values()
            .flat_map(|r| r.tuples.iter().flatten().copied())
            .collect();
        d.sort_unstable();
        d.dedup();
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_query() {
        let mut db = Database::new();
        db.insert("R", &[1, 2]);
        db.insert("R", &[2, 3]);
        db.insert("R", &[1, 2]); // duplicate
        assert_eq!(db.relation("R").unwrap().tuples.len(), 2);
        assert_eq!(db.size(), 2);
        assert!(db.relation("S").is_none());
        assert_eq!(db.active_domain(), vec![1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_mismatch_panics() {
        let mut db = Database::new();
        db.insert("R", &[1, 2]);
        db.insert("R", &[1]);
    }

    #[cfg(feature = "serde")]
    #[test]
    fn deserialize_normalizes_duplicates_and_rejects_bad_arity() {
        // Out-of-order insertion: the sorted-insert invariant makes the
        // stored form canonical, so the roundtrip compares equal.
        let mut db = Database::new();
        db.insert("R", &[3, 4]);
        db.insert("R", &[1, 2]);
        assert_eq!(
            db.relation("R").unwrap().tuples,
            vec![vec![1, 2], vec![3, 4]]
        );
        let back: Database = serde::json::from_str(&serde::json::to_string(&db)).unwrap();
        assert_eq!(back, db);
        // Hand-written payload with a duplicate tuple: deduped on load,
        // so the kernel's distinct-rows invariant holds for loaded data.
        let dup = r#"{"relations": {"R": {"arity": 2, "tuples": [[1, 2], [1, 2], [3, 4]]}}}"#;
        let loaded: Database = serde::json::from_str(dup).unwrap();
        assert_eq!(loaded.relation("R").unwrap().tuples.len(), 2);
        // Arity-mismatched tuples are a schema error, not a panic later.
        let bad = r#"{"relations": {"R": {"arity": 2, "tuples": [[1, 2, 3]]}}}"#;
        assert!(serde::json::from_str::<Database>(bad).is_err());
    }
}
