//! Conjunctive queries (Section 2 of the paper).

use cqd2_hypergraph::{Hypergraph, HypergraphBuilder};
use std::collections::BTreeMap;
use std::fmt;

/// A query variable (dense id within one query).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Var(pub u32);

impl Var {
    /// The id as an index.
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "?{}", self.0)
    }
}

/// A term: a variable or a constant.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Term {
    /// A query variable.
    Var(Var),
    /// A database constant.
    Const(u64),
}

/// A relational atom `R(t_1, …, t_k)`.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Atom {
    /// Relation symbol.
    pub relation: String,
    /// Terms in position order.
    pub terms: Vec<Term>,
}

impl Atom {
    /// The distinct variables of the atom, in first-occurrence order.
    pub fn vars(&self) -> Vec<Var> {
        let mut out = Vec::new();
        for t in &self.terms {
            if let Term::Var(v) = t {
                if !out.contains(v) {
                    out.push(*v);
                }
            }
        }
        out
    }

    /// Does the atom repeat a variable?
    pub fn has_repeated_vars(&self) -> bool {
        let vs: Vec<Var> = self
            .terms
            .iter()
            .filter_map(|t| match t {
                Term::Var(v) => Some(*v),
                Term::Const(_) => None,
            })
            .collect();
        let mut sorted = vs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        sorted.len() != vs.len()
    }
}

/// A function-free conjunctive query: a conjunction of atoms.
///
/// All results in the paper concern Boolean evaluation (existential
/// quantification is immaterial for `BCQ`) except counting, which is
/// defined for *full* CQs — we therefore treat every query as full and
/// leave projections to the caller.
#[derive(Clone, PartialEq, Eq, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ConjunctiveQuery {
    /// Atoms of the conjunction.
    pub atoms: Vec<Atom>,
    /// Names for variables (index = `Var` id).
    pub var_names: Vec<String>,
}

impl ConjunctiveQuery {
    /// Build a query from atoms given as `(relation, terms-as-names)`;
    /// names starting with `?` are variables, anything else parses as a
    /// `u64` constant.
    ///
    /// ```
    /// use cqd2_cq::ConjunctiveQuery;
    /// let q = ConjunctiveQuery::parse(&[("R", &["?x", "?y"]), ("S", &["?y", "42"])]);
    /// assert_eq!(q.num_vars(), 2);
    /// ```
    pub fn parse(atoms: &[(&str, &[&str])]) -> ConjunctiveQuery {
        let mut var_ids: BTreeMap<String, Var> = BTreeMap::new();
        let mut var_names: Vec<String> = Vec::new();
        let mut out_atoms = Vec::new();
        for (rel, terms) in atoms {
            let ts = terms
                .iter()
                .map(|t| {
                    if let Some(name) = t.strip_prefix('?') {
                        let v = *var_ids.entry(name.to_string()).or_insert_with(|| {
                            let v = Var(var_names.len() as u32);
                            var_names.push(name.to_string());
                            v
                        });
                        Term::Var(v)
                    } else {
                        Term::Const(t.parse().expect("constant must be u64"))
                    }
                })
                .collect();
            out_atoms.push(Atom {
                relation: rel.to_string(),
                terms: ts,
            });
        }
        ConjunctiveQuery {
            atoms: out_atoms,
            var_names,
        }
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.var_names.len()
    }

    /// All variables.
    pub fn vars(&self) -> impl Iterator<Item = Var> + '_ {
        (0..self.num_vars() as u32).map(Var)
    }

    /// The arity: maximum atom arity.
    pub fn arity(&self) -> usize {
        self.atoms.iter().map(|a| a.terms.len()).max().unwrap_or(0)
    }

    /// Is the query self-join free (no relation symbol occurs twice)?
    pub fn is_self_join_free(&self) -> bool {
        let mut rels: Vec<&str> = self.atoms.iter().map(|a| a.relation.as_str()).collect();
        rels.sort_unstable();
        rels.windows(2).all(|w| w[0] != w[1])
    }

    /// The hypergraph of the query: vertices are variables, one edge per
    /// distinct atom variable-set (Section 2; note `R(x,y) ∧ S(x,y)`
    /// yields a single edge).
    pub fn hypergraph(&self) -> Hypergraph {
        let mut b = HypergraphBuilder::new();
        // Intern all variables first so vertex ids equal Var ids.
        for name in &self.var_names {
            b.vertex(&format!("?{name}"));
        }
        for (i, atom) in self.atoms.iter().enumerate() {
            let vars = atom.vars();
            let names: Vec<String> = vars
                .iter()
                .map(|v| format!("?{}", self.var_names[v.idx()]))
                .collect();
            let refs: Vec<&str> = names.iter().map(String::as_str).collect();
            b = b.edge(&format!("{}#{}", atom.relation, i), &refs);
        }
        b.build().expect("edge names are unique")
    }

    /// The degree of the query = degree of its hypergraph.
    pub fn degree(&self) -> usize {
        self.hypergraph().max_degree()
    }

    /// For each edge of `h` — a hypergraph of this query, typically
    /// [`ConjunctiveQuery::hypergraph`] — the index of a representative
    /// atom with the same variable set (`None` if no atom matches).
    /// Built from one sorted-varset → atom-index map, so the whole
    /// mapping costs one hash probe per edge. Shared by the GHD
    /// evaluator's bag materialization and the engine's cost estimator,
    /// which must agree on which relation stands in for an edge.
    pub fn edge_representatives(&self, h: &Hypergraph) -> Vec<Option<usize>> {
        let mut atom_by_varset: std::collections::HashMap<Vec<Var>, usize> =
            std::collections::HashMap::with_capacity(self.atoms.len());
        for (ai, atom) in self.atoms.iter().enumerate() {
            let mut vs = atom.vars();
            vs.sort_unstable();
            atom_by_varset.entry(vs).or_insert(ai);
        }
        h.edge_ids()
            .map(|e| {
                let mut ev: Vec<Var> = h.edge(e).iter().map(|v| Var(v.0)).collect();
                ev.sort_unstable();
                atom_by_varset.get(&ev).copied()
            })
            .collect()
    }

    /// Pretty-print, e.g. `R(?x, ?y) ∧ S(?y, 42)`.
    pub fn display(&self) -> String {
        self.atoms
            .iter()
            .map(|a| {
                let ts: Vec<String> = a
                    .terms
                    .iter()
                    .map(|t| match t {
                        Term::Var(v) => format!("?{}", self.var_names[v.idx()]),
                        Term::Const(c) => c.to_string(),
                    })
                    .collect();
                format!("{}({})", a.relation, ts.join(", "))
            })
            .collect::<Vec<_>>()
            .join(" ∧ ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_accessors() {
        let q = ConjunctiveQuery::parse(&[
            ("R", &["?x", "?y", "?z"]),
            ("S", &["?z", "?w"]),
            ("T", &["?w", "7"]),
        ]);
        assert_eq!(q.num_vars(), 4);
        assert_eq!(q.arity(), 3);
        assert!(q.is_self_join_free());
        assert_eq!(q.display(), "R(?x, ?y, ?z) ∧ S(?z, ?w) ∧ T(?w, 7)");
    }

    #[test]
    fn hypergraph_extraction() {
        let q = ConjunctiveQuery::parse(&[("R", &["?x", "?y"]), ("S", &["?y", "?z"])]);
        let h = q.hypergraph();
        assert_eq!(h.num_vertices(), 2 + 1);
        assert_eq!(h.num_edges(), 2);
        assert_eq!(h.max_degree(), 2);
    }

    #[test]
    fn duplicate_var_sets_collapse_in_hypergraph() {
        // The paper's example: R(x,y) ∧ S(x,y) ∧ T(x,z) has degree 2.
        let q = ConjunctiveQuery::parse(&[
            ("R", &["?x", "?y"]),
            ("S", &["?x", "?y"]),
            ("T", &["?x", "?z"]),
        ]);
        let h = q.hypergraph();
        assert_eq!(h.num_edges(), 2);
        assert_eq!(h.max_degree(), 2);
        assert_eq!(q.degree(), 2);
    }

    #[test]
    fn constants_are_not_vertices() {
        // Both atoms have variable set {x}: a single hypergraph edge.
        let q = ConjunctiveQuery::parse(&[("R", &["?x", "5"]), ("S", &["?x", "?x"])]);
        let h = q.hypergraph();
        assert_eq!(h.num_vertices(), 1);
        assert_eq!(h.num_edges(), 1);
        let q2 = ConjunctiveQuery::parse(&[("R", &["?x", "5"]), ("S", &["?x", "?y"])]);
        assert_eq!(q2.hypergraph().num_edges(), 2);
    }

    #[test]
    fn repeated_vars_detected() {
        let q = ConjunctiveQuery::parse(&[("R", &["?x", "?x"])]);
        assert!(q.atoms[0].has_repeated_vars());
        assert_eq!(q.atoms[0].vars(), vec![Var(0)]);
    }

    #[test]
    fn self_join_detection() {
        let q = ConjunctiveQuery::parse(&[("R", &["?x", "?y"]), ("R", &["?y", "?z"])]);
        assert!(!q.is_self_join_free());
    }
}
