//! The delta kernel: apply batches of fact inserts/deletes to a
//! [`Database`] by **structural sharing**.
//!
//! A [`DatabaseDelta`] names tuples to add and remove per relation.
//! [`Database::apply_delta`] merges each touched relation's sorted
//! insert/delete lists into its sorted-distinct tuple store in one
//! `O(n + d)` pass and produces a *new* database in which every
//! untouched relation is the **same** [`Arc`]`<StoredRelation>` as in
//! the base — `Arc::ptr_eq` holds — so the cost of a small delta is
//! proportional to the relations it touches, never to the database.
//!
//! Semantics, fixed and documented here:
//! - deltas modify *existing* relations; naming an unknown relation is
//!   a typed [`DeltaError::UnknownRelation`], never an implicit schema
//!   change (the serving epoch stays put);
//! - inserting a tuple that is already present, or deleting one that is
//!   absent, is a no-op (and not counted in the outcome);
//! - a tuple listed in both the inserts and the deletes of one batch is
//!   **absent** afterwards — deletes win within a batch;
//! - a relation whose merged contents equal its base contents keeps its
//!   base `Arc` (the delta did not "touch" it).

use std::collections::BTreeMap;
use std::sync::Arc;

use crate::database::{Database, StoredRelation};

/// Pending changes to one relation: tuples to add and tuples to remove.
/// Order and duplicates are irrelevant — both lists are sorted and
/// deduplicated at apply time.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RelationDelta {
    /// Tuples to insert (already-present tuples are no-ops).
    pub inserts: Vec<Vec<u64>>,
    /// Tuples to delete (absent tuples are no-ops; deletes win over
    /// inserts of the same tuple in the same batch).
    pub deletes: Vec<Vec<u64>>,
}

impl RelationDelta {
    /// No pending changes at all?
    pub fn is_empty(&self) -> bool {
        self.inserts.is_empty() && self.deletes.is_empty()
    }
}

/// A batch of fact changes across relations — the unit the update
/// plane applies and publishes as one new epoch.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DatabaseDelta {
    relations: BTreeMap<String, RelationDelta>,
}

impl DatabaseDelta {
    /// An empty batch.
    pub fn new() -> DatabaseDelta {
        DatabaseDelta::default()
    }

    /// Queue `tuple` for insertion into `relation`.
    pub fn insert(&mut self, relation: &str, tuple: Vec<u64>) {
        self.relations
            .entry(relation.to_string())
            .or_default()
            .inserts
            .push(tuple);
    }

    /// Queue `tuple` for deletion from `relation`.
    pub fn delete(&mut self, relation: &str, tuple: Vec<u64>) {
        self.relations
            .entry(relation.to_string())
            .or_default()
            .deletes
            .push(tuple);
    }

    /// Iterate over `(relation, pending changes)` pairs, in name order.
    pub fn relations(&self) -> impl Iterator<Item = (&str, &RelationDelta)> {
        self.relations.iter().map(|(n, d)| (n.as_str(), d))
    }

    /// No changes queued at all?
    pub fn is_empty(&self) -> bool {
        self.relations.values().all(RelationDelta::is_empty)
    }

    /// Queued fact counts `(inserts, deletes)` — the *requested* sizes,
    /// before no-op collapsing.
    pub fn fact_counts(&self) -> (usize, usize) {
        self.relations.values().fold((0, 0), |(i, d), rel| {
            (i + rel.inserts.len(), d + rel.deletes.len())
        })
    }
}

/// Why a delta was rejected. The base database is untouched on every
/// error — rejection happens before anything is published.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeltaError {
    /// The delta names a relation the database does not have. Deltas
    /// change data, never schema.
    UnknownRelation(String),
    /// A delta tuple's length does not match the relation's arity.
    ArityMismatch {
        /// The relation the tuple was destined for.
        relation: String,
        /// The relation's declared arity.
        expected: usize,
        /// The tuple's actual length.
        got: usize,
    },
}

impl std::fmt::Display for DeltaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeltaError::UnknownRelation(name) => {
                write!(f, "delta names unknown relation `{name}`")
            }
            DeltaError::ArityMismatch {
                relation,
                expected,
                got,
            } => write!(
                f,
                "delta tuple for `{relation}` has {got} terms but the relation has arity {expected}"
            ),
        }
    }
}

impl std::error::Error for DeltaError {}

/// The outcome of [`Database::apply_delta`]: the new database plus an
/// account of what actually changed.
#[derive(Debug, Clone)]
pub struct DeltaApplied {
    /// The new database. Untouched relations are `Arc`-shared with the
    /// base; touched relations are fresh.
    pub db: Database,
    /// Names of the relations whose contents actually changed, in name
    /// order.
    pub touched: Vec<String>,
    /// Facts newly present (inserts that were not already there and
    /// were not re-deleted by the same batch).
    pub inserted: usize,
    /// Facts actually removed.
    pub deleted: usize,
}

/// Sorted-merge of one relation's tuples with its sorted, deduplicated
/// insert/delete lists: one forward pass, output sorted and distinct.
/// Returns `None` when the result equals `base` (the relation is
/// untouched and keeps its `Arc`), else the new tuple list plus the
/// `(inserted, deleted)` counts.
fn merge_relation(
    base: &[Vec<u64>],
    inserts: &[Vec<u64>],
    deletes: &[Vec<u64>],
) -> Option<(Vec<Vec<u64>>, usize, usize)> {
    let mut out: Vec<Vec<u64>> = Vec::with_capacity(base.len() + inserts.len());
    let (mut bi, mut ii, mut di) = (0, 0, 0);
    let (mut inserted, mut deleted) = (0usize, 0usize);
    // Emit the union of `base` and `inserts` in sorted order, skipping
    // anything in `deletes`. All three inputs are ascending, so the
    // delete cursor only moves forward.
    loop {
        let candidate_from_base = match (base.get(bi), inserts.get(ii)) {
            (None, None) => break,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (Some(b), Some(i)) => b <= i,
        };
        let candidate = if candidate_from_base {
            &base[bi]
        } else {
            &inserts[ii]
        };
        // An insert equal to the current base tuple is a no-op: consume
        // both cursors, emit once (attributed to the base).
        let duplicate_insert = candidate_from_base && inserts.get(ii) == Some(candidate);
        while di < deletes.len() && deletes[di] < *candidate {
            di += 1;
        }
        let dropped = deletes.get(di) == Some(candidate);
        if dropped {
            // Only deleting a tuple the base had counts as a deletion;
            // insert-then-delete within one batch never existed.
            if candidate_from_base {
                deleted += 1;
            }
        } else {
            if !candidate_from_base {
                inserted += 1;
            }
            out.push(candidate.clone());
        }
        if candidate_from_base {
            bi += 1;
        }
        if duplicate_insert || !candidate_from_base {
            ii += 1;
        }
    }
    if inserted == 0 && deleted == 0 {
        return None;
    }
    Some((out, inserted, deleted))
}

impl Database {
    /// Apply `delta`, producing a new database that shares every
    /// untouched relation's `Arc` with `self` (see the module docs for
    /// the exact semantics). `self` is never modified; on `Err` nothing
    /// is produced at all.
    pub fn apply_delta(&self, delta: &DatabaseDelta) -> Result<DeltaApplied, DeltaError> {
        // Validate the whole batch before building anything: a rejected
        // delta must leave no partial work behind.
        for (name, rel_delta) in delta.relations() {
            let Some(rel) = self.relation(name) else {
                return Err(DeltaError::UnknownRelation(name.to_string()));
            };
            for tuple in rel_delta.inserts.iter().chain(&rel_delta.deletes) {
                if tuple.len() != rel.arity {
                    return Err(DeltaError::ArityMismatch {
                        relation: name.to_string(),
                        expected: rel.arity,
                        got: tuple.len(),
                    });
                }
            }
        }
        let mut relations: BTreeMap<String, Arc<StoredRelation>> = BTreeMap::new();
        let mut touched = Vec::new();
        let (mut inserted, mut deleted) = (0usize, 0usize);
        for (name, arc) in self.relation_arcs() {
            let merged = delta.relations.get(name).and_then(|rel_delta| {
                let mut inserts = rel_delta.inserts.clone();
                inserts.sort_unstable();
                inserts.dedup();
                let mut deletes = rel_delta.deletes.clone();
                deletes.sort_unstable();
                deletes.dedup();
                merge_relation(&arc.tuples, &inserts, &deletes)
            });
            match merged {
                Some((tuples, ins, del)) => {
                    touched.push(name.to_string());
                    inserted += ins;
                    deleted += del;
                    relations.insert(
                        name.to_string(),
                        Arc::new(StoredRelation {
                            arity: arc.arity,
                            tuples,
                        }),
                    );
                }
                None => {
                    relations.insert(name.to_string(), Arc::clone(arc));
                }
            }
        }
        Ok(DeltaApplied {
            db: Database::from_shared(relations),
            touched,
            inserted,
            deleted,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> Database {
        let mut db = Database::new();
        db.insert_all("R", &[vec![1, 2], vec![3, 4]]);
        db.insert_all("S", &[vec![10], vec![20]]);
        db.insert_all("T", &[vec![7, 7, 7]]);
        db
    }

    #[test]
    fn untouched_relations_share_arcs() {
        let db = base();
        let mut delta = DatabaseDelta::new();
        delta.insert("R", vec![5, 6]);
        let out = db.apply_delta(&delta).unwrap();
        assert_eq!(out.touched, vec!["R".to_string()]);
        assert_eq!((out.inserted, out.deleted), (1, 0));
        // The touched relation is fresh; the other two are the same
        // allocation as the base.
        assert!(!Arc::ptr_eq(
            db.relation_arc("R").unwrap(),
            out.db.relation_arc("R").unwrap()
        ));
        for name in ["S", "T"] {
            assert!(Arc::ptr_eq(
                db.relation_arc(name).unwrap(),
                out.db.relation_arc(name).unwrap()
            ));
        }
        assert_eq!(
            out.db.relation("R").unwrap().tuples,
            vec![vec![1, 2], vec![3, 4], vec![5, 6]]
        );
        // The base is untouched.
        assert_eq!(db.relation("R").unwrap().tuples.len(), 2);
    }

    #[test]
    fn delta_matches_rebuilt_database() {
        let db = base();
        let mut delta = DatabaseDelta::new();
        delta.insert("R", vec![0, 0]);
        delta.insert("R", vec![9, 9]);
        delta.delete("R", vec![3, 4]);
        delta.delete("S", vec![10]);
        let out = db.apply_delta(&delta).unwrap();
        let mut rebuilt = Database::new();
        rebuilt.insert_all("R", &[vec![0, 0], vec![1, 2], vec![9, 9]]);
        rebuilt.insert_all("S", &[vec![20]]);
        rebuilt.insert_all("T", &[vec![7, 7, 7]]);
        assert_eq!(out.db, rebuilt);
        assert_eq!((out.inserted, out.deleted), (2, 2));
        assert_eq!(out.touched, vec!["R".to_string(), "S".to_string()]);
    }

    #[test]
    fn noop_changes_keep_every_arc() {
        let db = base();
        let mut delta = DatabaseDelta::new();
        delta.insert("R", vec![1, 2]); // already present
        delta.delete("R", vec![8, 8]); // absent
        delta.insert("S", vec![30]);
        delta.delete("S", vec![30]); // deletes win: net no-op
        let out = db.apply_delta(&delta).unwrap();
        assert!(out.touched.is_empty());
        assert_eq!((out.inserted, out.deleted), (0, 0));
        for name in ["R", "S", "T"] {
            assert!(Arc::ptr_eq(
                db.relation_arc(name).unwrap(),
                out.db.relation_arc(name).unwrap()
            ));
        }
        assert_eq!(out.db, db);
    }

    #[test]
    fn deletes_win_over_inserts_but_only_on_present_tuples() {
        let db = base();
        let mut delta = DatabaseDelta::new();
        // Present tuple inserted *and* deleted: ends absent, counts as
        // one deletion.
        delta.insert("R", vec![1, 2]);
        delta.delete("R", vec![1, 2]);
        let out = db.apply_delta(&delta).unwrap();
        assert_eq!((out.inserted, out.deleted), (0, 1));
        assert_eq!(out.db.relation("R").unwrap().tuples, vec![vec![3, 4]]);
    }

    #[test]
    fn duplicate_queued_tuples_collapse() {
        let db = base();
        let mut delta = DatabaseDelta::new();
        delta.insert("S", vec![30]);
        delta.insert("S", vec![30]);
        delta.delete("S", vec![10]);
        delta.delete("S", vec![10]);
        let out = db.apply_delta(&delta).unwrap();
        assert_eq!((out.inserted, out.deleted), (1, 1));
        assert_eq!(out.db.relation("S").unwrap().tuples, vec![vec![20], vec![30]]);
        assert_eq!(delta.fact_counts(), (2, 2));
    }

    #[test]
    fn unknown_relation_and_arity_mismatch_are_typed() {
        let db = base();
        let mut delta = DatabaseDelta::new();
        delta.insert("Nope", vec![1]);
        match db.apply_delta(&delta) {
            Err(DeltaError::UnknownRelation(name)) => assert_eq!(name, "Nope"),
            other => panic!("{other:?}"),
        }
        let mut delta = DatabaseDelta::new();
        delta.insert("R", vec![1, 2, 3]);
        match db.apply_delta(&delta) {
            Err(DeltaError::ArityMismatch {
                relation,
                expected: 2,
                got: 3,
            }) => assert_eq!(relation, "R"),
            other => panic!("{other:?}"),
        }
        // Deletes are validated too.
        let mut delta = DatabaseDelta::new();
        delta.delete("T", vec![7]);
        assert!(matches!(
            db.apply_delta(&delta),
            Err(DeltaError::ArityMismatch { expected: 3, got: 1, .. })
        ));
    }

    #[test]
    fn empty_delta_is_identity() {
        let db = base();
        let out = db.apply_delta(&DatabaseDelta::new()).unwrap();
        assert_eq!(out.db, db);
        assert!(out.touched.is_empty());
        assert!(DatabaseDelta::new().is_empty());
    }

    #[test]
    fn emptying_a_relation_keeps_its_schema() {
        let db = base();
        let mut delta = DatabaseDelta::new();
        delta.delete("T", vec![7, 7, 7]);
        let out = db.apply_delta(&delta).unwrap();
        let t = out.db.relation("T").unwrap();
        assert_eq!(t.arity, 3);
        assert!(t.tuples.is_empty());
        // A second delta can still target it.
        let mut delta = DatabaseDelta::new();
        delta.insert("T", vec![1, 2, 3]);
        let again = out.db.apply_delta(&delta).unwrap();
        assert_eq!(again.db.relation("T").unwrap().tuples, vec![vec![1, 2, 3]]);
    }
}
