//! The reference row-store relation: one `Vec<u64>` per tuple.
//!
//! A [`VRelation`] associates each column with a query variable; all
//! operators align on variables, so join conditions never need to be
//! spelled out. Binding an atom against a database resolves constants and
//! repeated variables up front, after which every evaluator deals only
//! with distinct-variable columns.
//!
//! The evaluators themselves run on the columnar
//! [`crate::flat::FlatRelation`] kernel; this row store is kept as the
//! obviously-correct **reference implementation** that the differential
//! tests (`tests/kernel_differential.rs`) and the `relation_ops`
//! micro-benchmarks compare the kernel against. Its operators dedup
//! after every step and allocate per tuple — exactly the costs the flat
//! kernel exists to avoid.

use crate::database::Database;
use crate::query::{Atom, Term, Var};
use std::collections::HashMap;

/// A relation whose columns are query variables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VRelation {
    /// Column variables (distinct).
    pub vars: Vec<Var>,
    /// Tuples, each of length `vars.len()`.
    pub tuples: Vec<Vec<u64>>,
}

impl VRelation {
    /// The relation over no variables containing the empty tuple
    /// (the join identity).
    pub fn unit() -> VRelation {
        VRelation {
            vars: vec![],
            tuples: vec![vec![]],
        }
    }

    /// Is the relation empty (no tuples)?
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Bind `atom` against `db`: select tuples matching the atom's
    /// constants and repeated variables, and project to one column per
    /// distinct variable. A missing relation yields the empty result.
    pub fn bind(atom: &Atom, db: &Database) -> VRelation {
        let vars = atom.vars();
        let Some(stored) = db.relation(&atom.relation) else {
            return VRelation {
                vars,
                tuples: vec![],
            };
        };
        // Positions of the first occurrence of each variable.
        let mut first_pos: Vec<usize> = Vec::with_capacity(vars.len());
        for v in &vars {
            let p = atom
                .terms
                .iter()
                .position(|t| matches!(t, Term::Var(w) if w == v))
                .expect("var occurs");
            first_pos.push(p);
        }
        let mut tuples = Vec::new();
        'tup: for t in &stored.tuples {
            if t.len() != atom.terms.len() {
                continue;
            }
            // Constants must match; repeated variables must agree.
            let mut assignment: HashMap<Var, u64> = HashMap::new();
            for (i, term) in atom.terms.iter().enumerate() {
                match term {
                    Term::Const(c) => {
                        if t[i] != *c {
                            continue 'tup;
                        }
                    }
                    Term::Var(v) => match assignment.get(v) {
                        Some(&val) => {
                            if val != t[i] {
                                continue 'tup;
                            }
                        }
                        None => {
                            assignment.insert(*v, t[i]);
                        }
                    },
                }
            }
            tuples.push(first_pos.iter().map(|&p| t[p]).collect());
        }
        let mut rel = VRelation { vars, tuples };
        rel.dedup();
        rel
    }

    /// Remove duplicate tuples.
    pub fn dedup(&mut self) {
        self.tuples.sort_unstable();
        self.tuples.dedup();
    }

    /// Natural join on shared variables (hash join on the smaller side).
    pub fn join(&self, other: &VRelation) -> VRelation {
        let shared: Vec<Var> = self
            .vars
            .iter()
            .copied()
            .filter(|v| other.vars.contains(v))
            .collect();
        let self_key: Vec<usize> = shared
            .iter()
            .map(|v| self.vars.iter().position(|w| w == v).expect("shared"))
            .collect();
        let other_key: Vec<usize> = shared
            .iter()
            .map(|v| other.vars.iter().position(|w| w == v).expect("shared"))
            .collect();
        let other_extra: Vec<usize> = (0..other.vars.len())
            .filter(|i| !shared.contains(&other.vars[*i]))
            .collect();
        // Hash the right side.
        let mut index: HashMap<Vec<u64>, Vec<usize>> = HashMap::new();
        for (i, t) in other.tuples.iter().enumerate() {
            let key: Vec<u64> = other_key.iter().map(|&p| t[p]).collect();
            index.entry(key).or_default().push(i);
        }
        let mut vars = self.vars.clone();
        vars.extend(other_extra.iter().map(|&i| other.vars[i]));
        let mut tuples = Vec::new();
        for t in &self.tuples {
            let key: Vec<u64> = self_key.iter().map(|&p| t[p]).collect();
            if let Some(matches) = index.get(&key) {
                for &j in matches {
                    let mut out = t.clone();
                    out.extend(other_extra.iter().map(|&p| other.tuples[j][p]));
                    tuples.push(out);
                }
            }
        }
        let mut rel = VRelation { vars, tuples };
        rel.dedup();
        rel
    }

    /// Project to `keep` (order taken from `keep`; unknown variables are
    /// an error).
    pub fn project(&self, keep: &[Var]) -> VRelation {
        let pos: Vec<usize> = keep
            .iter()
            .map(|v| {
                self.vars
                    .iter()
                    .position(|w| w == v)
                    .expect("projection variable must exist")
            })
            .collect();
        let mut rel = VRelation {
            vars: keep.to_vec(),
            tuples: self
                .tuples
                .iter()
                .map(|t| pos.iter().map(|&p| t[p]).collect())
                .collect(),
        };
        rel.dedup();
        rel
    }

    /// Semijoin: keep the tuples of `self` that join with some tuple of
    /// `other`.
    pub fn semijoin(&self, other: &VRelation) -> VRelation {
        let shared: Vec<Var> = self
            .vars
            .iter()
            .copied()
            .filter(|v| other.vars.contains(v))
            .collect();
        if shared.is_empty() {
            return if other.is_empty() {
                VRelation {
                    vars: self.vars.clone(),
                    tuples: vec![],
                }
            } else {
                self.clone()
            };
        }
        let self_key: Vec<usize> = shared
            .iter()
            .map(|v| self.vars.iter().position(|w| w == v).expect("shared"))
            .collect();
        let other_key: Vec<usize> = shared
            .iter()
            .map(|v| other.vars.iter().position(|w| w == v).expect("shared"))
            .collect();
        let keys: std::collections::HashSet<Vec<u64>> = other
            .tuples
            .iter()
            .map(|t| other_key.iter().map(|&p| t[p]).collect())
            .collect();
        VRelation {
            vars: self.vars.clone(),
            tuples: self
                .tuples
                .iter()
                .filter(|t| keys.contains(&self_key.iter().map(|&p| t[p]).collect::<Vec<u64>>()))
                .cloned()
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::ConjunctiveQuery;

    fn v(i: u32) -> Var {
        Var(i)
    }

    #[test]
    fn bind_handles_constants_and_repeats() {
        let mut db = Database::new();
        db.insert_all(
            "R",
            &[vec![1, 1, 5], vec![1, 2, 5], vec![2, 2, 7], vec![3, 3, 5]],
        );
        let q = ConjunctiveQuery::parse(&[("R", &["?x", "?x", "5"])]);
        let rel = VRelation::bind(&q.atoms[0], &db);
        assert_eq!(rel.vars.len(), 1);
        assert_eq!(rel.tuples, vec![vec![1], vec![3]]);
    }

    #[test]
    fn bind_missing_relation_is_empty() {
        let db = Database::new();
        let q = ConjunctiveQuery::parse(&[("R", &["?x"])]);
        assert!(VRelation::bind(&q.atoms[0], &db).is_empty());
    }

    #[test]
    fn join_on_shared_variable() {
        let a = VRelation {
            vars: vec![v(0), v(1)],
            tuples: vec![vec![1, 2], vec![2, 3]],
        };
        let b = VRelation {
            vars: vec![v(1), v(2)],
            tuples: vec![vec![2, 10], vec![2, 11], vec![9, 12]],
        };
        let j = a.join(&b);
        assert_eq!(j.vars, vec![v(0), v(1), v(2)]);
        assert_eq!(j.tuples, vec![vec![1, 2, 10], vec![1, 2, 11]]);
    }

    #[test]
    fn join_without_shared_is_product() {
        let a = VRelation {
            vars: vec![v(0)],
            tuples: vec![vec![1], vec![2]],
        };
        let b = VRelation {
            vars: vec![v(1)],
            tuples: vec![vec![7], vec![8]],
        };
        assert_eq!(a.join(&b).tuples.len(), 4);
    }

    #[test]
    fn join_with_unit() {
        let a = VRelation {
            vars: vec![v(0)],
            tuples: vec![vec![1]],
        };
        assert_eq!(a.join(&VRelation::unit()), a);
        assert_eq!(VRelation::unit().join(&a).tuples, a.tuples);
    }

    #[test]
    fn project_dedups() {
        let a = VRelation {
            vars: vec![v(0), v(1)],
            tuples: vec![vec![1, 2], vec![1, 3]],
        };
        let p = a.project(&[v(0)]);
        assert_eq!(p.tuples, vec![vec![1]]);
    }

    #[test]
    fn semijoin_filters() {
        let a = VRelation {
            vars: vec![v(0), v(1)],
            tuples: vec![vec![1, 2], vec![2, 3]],
        };
        let b = VRelation {
            vars: vec![v(1)],
            tuples: vec![vec![2]],
        };
        let s = a.semijoin(&b);
        assert_eq!(s.tuples, vec![vec![1, 2]]);
        // Disjoint semijoin: nonempty other keeps everything.
        let c = VRelation {
            vars: vec![v(9)],
            tuples: vec![vec![5]],
        };
        assert_eq!(a.semijoin(&c).tuples.len(), 2);
        // Disjoint semijoin with empty other: empties.
        let e = VRelation {
            vars: vec![v(9)],
            tuples: vec![],
        };
        assert!(a.semijoin(&e).is_empty());
    }
}
