//! Grid-minor extraction.
//!
//! The Excluded Grid Theorem (Prop. 4.5) guarantees large grid minors in
//! graphs of large treewidth; its known proofs are far outside implementable
//! scope, so this module provides the *executable* counterpart used by the
//! Theorem 4.7 pipeline:
//!
//! 1. sound host simplification (degree-0/1 pruning — complete for
//!    patterns of min degree ≥ 2 — and degree-2 suppression — sound for
//!    "found" answers, used as a fast path), with model lifting back to the
//!    original host;
//! 2. exact budgeted search on the (simplified) host via [`crate::finder`].
//!
//! For the structured near-grid hosts in our experiments (duals of
//! decorated jigsaws) the fast path almost always succeeds and certifies
//! the model by validation against the *original* host.

use crate::finder::{find_minor, MinorSearch};
use crate::minor_map::MinorMap;
use cqd2_hypergraph::generators::grid_graph;
use cqd2_hypergraph::Graph;

/// Prune degree-0 and degree-1 vertices to closure. Complete for patterns
/// of minimum degree ≥ 2 (a leaf can never contribute to such a model).
/// Returns the pruned host and, for each pruned-host vertex, its original
/// id.
pub fn prune_low_degree(host: &Graph) -> (Graph, Vec<u32>) {
    let mut alive: Vec<bool> = vec![true; host.num_vertices()];
    let mut deg: Vec<usize> = (0..host.num_vertices())
        .map(|v| host.degree(v as u32))
        .collect();
    let mut changed = true;
    while changed {
        changed = false;
        for v in 0..host.num_vertices() {
            if alive[v] && deg[v] <= 1 {
                alive[v] = false;
                changed = true;
                for &u in host.neighbors(v as u32) {
                    if alive[u as usize] {
                        deg[u as usize] -= 1;
                    }
                }
            }
        }
    }
    let keep: Vec<u32> = (0..host.num_vertices() as u32)
        .filter(|&v| alive[v as usize])
        .collect();
    let (pruned, _) = host.induced(&keep);
    (pruned, keep)
}

/// Suppress degree-2 vertices: repeatedly contract an edge at a degree-2
/// vertex, recording a snapshot after every contraction. Each snapshot is
/// `(graph, model-of-graph-in-host)`; snapshots are ordered from the host
/// itself (index 0) to the fully suppressed graph (last).
///
/// Suppression is lossy for minor containment (it is itself a sequence of
/// contractions), so callers search *all* snapshots: a hit on any snapshot
/// lifts soundly to the host via [`MinorMap::compose`].
pub fn suppress_degree_two(host: &Graph) -> Vec<(Graph, MinorMap)> {
    let mut g = host.clone();
    // groups[v] = original vertices represented by current vertex v.
    let mut groups: Vec<Vec<u32>> = (0..host.num_vertices() as u32).map(|v| vec![v]).collect();
    let mut snapshots = vec![(
        g.clone(),
        MinorMap {
            branch_sets: groups.clone(),
        },
    )];
    // Round-based suppression: at the start of each round, mark the
    // degree-2 vertices that have a neighbour of degree ≥ 3 — these are
    // "subdivision-like" and fold into their structural endpoints without
    // consuming structural vertices. Only marked vertices are contracted
    // within the round, so the fully-cleaned graph (e.g. a pure grid under
    // all its subdivisions) appears as a snapshot before structural
    // degree-2 vertices (grid corners) start merging in later rounds.
    // When no vertex is marked, one arbitrary eligible vertex is
    // contracted to keep making progress (long cycles, paths).
    fn eligible(g: &Graph, v: u32) -> bool {
        g.degree(v) == 2 && {
            let nb = g.neighbors(v);
            // Keep triangles intact: contracting a triangle vertex loses
            // the cycle; skip those.
            !g.has_edge(nb[0], nb[1])
        }
    }
    loop {
        let mut marked: Vec<u32> = (0..g.num_vertices() as u32)
            .filter(|&v| eligible(&g, v) && g.neighbors(v).iter().any(|&u| g.degree(u) >= 3))
            .collect();
        if marked.is_empty() {
            match (0..g.num_vertices() as u32).find(|&v| eligible(&g, v)) {
                Some(v) => marked.push(v),
                None => break,
            }
        }
        while let Some(v) = marked.pop() {
            if !eligible(&g, v) {
                continue; // a prior contraction in this round changed it
            }
            let u = *g
                .neighbors(v)
                .iter()
                .max_by_key(|&&u| g.degree(u))
                .expect("degree-2 vertex has neighbours");
            let (g2, map) = g.contract_edge(u, v);
            // v merged into u: rebuild groups under `map` (old -> new id).
            let mut new_groups: Vec<Vec<u32>> = vec![Vec::new(); g2.num_vertices()];
            for (old, grp) in groups.iter().enumerate() {
                new_groups[map[old] as usize].extend(grp.iter().copied());
            }
            groups = new_groups;
            for m in &mut marked {
                *m = map[*m as usize];
            }
            g = g2;
            let mut sorted_groups = groups.clone();
            for grp in &mut sorted_groups {
                grp.sort_unstable();
            }
            snapshots.push((
                g.clone(),
                MinorMap {
                    branch_sets: sorted_groups,
                },
            ));
        }
    }
    snapshots
}

/// Search for an `n × m` grid minor in `host`.
///
/// Strategy: prune low-degree vertices (complete for `n, m ≥ 2`), then try
/// the suppressed host (fast path; sound via model lifting), then fall back
/// to exact search on the pruned host. The returned model is validated
/// against the original `host`.
pub fn find_grid_minor(host: &Graph, n: usize, m: usize, budget: u64) -> MinorSearch {
    let pattern = grid_graph(n, m);
    if n.min(m) < 2 {
        // Paths/single vertices: no pruning legality; plain exact search.
        return find_minor(&pattern, host, budget);
    }
    let (pruned, keep) = prune_low_degree(host);
    let lift_pruned = |mm: MinorMap| -> MinorMap {
        MinorMap {
            branch_sets: mm
                .branch_sets
                .into_iter()
                .map(|bs| {
                    let mut s: Vec<u32> = bs.into_iter().map(|x| keep[x as usize]).collect();
                    s.sort_unstable();
                    s
                })
                .collect(),
        }
    };
    // Fast path: try suppression snapshots from most-reduced to least with
    // iterative deepening on the branch-set size cap. Most snapshots fail
    // the counting bounds instantly; the interesting ones (e.g. "all
    // subdivisions contracted") succeed quickly with tiny branch sets. A
    // hit on any snapshot lifts soundly; misses just fall through.
    let snapshots = suppress_degree_two(&pruned);
    let per_try_budget = (budget / 16).max(50_000);
    for cap in [1usize, 2, 4] {
        for (snap, model_in_pruned) in snapshots.iter().rev() {
            if snap.num_vertices() < pattern.num_vertices()
                || snap.num_edges() < pattern.num_edges()
            {
                continue;
            }
            if let MinorSearch::Found(mm) =
                crate::finder::find_minor_capped(&pattern, snap, per_try_budget, cap)
            {
                let in_pruned = mm.compose(model_in_pruned);
                let lifted = lift_pruned(in_pruned);
                debug_assert!(lifted.validate(&pattern, host).is_ok());
                return MinorSearch::Found(lifted);
            }
        }
    }
    // Complete path: exact search on the pruned host (snapshot 0 equals the
    // pruned host, but with a capped budget; this run is authoritative).
    match find_minor(&pattern, &pruned, budget) {
        MinorSearch::Found(mm) => {
            let lifted = lift_pruned(mm);
            debug_assert!(lifted.validate(&pattern, host).is_ok());
            MinorSearch::Found(lifted)
        }
        other => other,
    }
}

/// The largest `n` such that the `n × n` grid is found as a minor within
/// the budget, together with its model. Returns `(1, trivial)` for
/// nonempty hosts without a 2×2 grid.
pub fn largest_square_grid_minor(host: &Graph, budget: u64) -> (usize, Option<MinorMap>) {
    let mut best = (0, None);
    if host.num_vertices() > 0 {
        best = (
            1,
            Some(MinorMap {
                branch_sets: vec![vec![0]],
            }),
        );
    }
    let mut n = 2;
    loop {
        if n * n > host.num_vertices() {
            break;
        }
        match find_grid_minor(host, n, n, budget) {
            MinorSearch::Found(m) => {
                best = (n, Some(m));
                n += 1;
            }
            _ => break,
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqd2_hypergraph::generators::{cycle_graph, grid_graph, path_graph};

    const BUDGET: u64 = 2_000_000;

    #[test]
    fn prune_removes_trees() {
        // A grid with a pendant path: pruning removes the path.
        let mut edges: Vec<(u32, u32)> = grid_graph(2, 2).edges().collect();
        edges.push((3, 4));
        edges.push((4, 5));
        let host = Graph::from_edges(6, &edges);
        let (pruned, keep) = prune_low_degree(&host);
        assert_eq!(pruned.num_vertices(), 4);
        assert_eq!(keep, vec![0, 1, 2, 3]);
    }

    #[test]
    fn suppress_shrinks_subdivisions() {
        // C8 suppresses down to C3 (triangle guard stops further).
        let snapshots = suppress_degree_two(&cycle_graph(8));
        let (g, model) = snapshots.last().unwrap();
        assert_eq!(g.num_vertices(), 3);
        model.validate(g, &cycle_graph(8)).unwrap();
        // Every snapshot model is valid.
        for (snap, m) in &snapshots {
            m.validate(snap, &cycle_graph(8)).unwrap();
        }
    }

    #[test]
    fn grid_minor_in_itself() {
        let r = find_grid_minor(&grid_graph(3, 3), 3, 3, BUDGET);
        assert!(matches!(r, MinorSearch::Found(_)));
    }

    #[test]
    fn grid_minor_in_subdivided_grid() {
        // Subdivide every edge of the 3x3 grid once; the 3x3 grid must
        // still be found (via suppression fast path).
        let g = grid_graph(3, 3);
        let mut edges: Vec<(u32, u32)> = Vec::new();
        let mut next = 9u32;
        for (u, v) in g.edges() {
            edges.push((u, next));
            edges.push((next, v));
            next += 1;
        }
        let host = Graph::from_edges(next as usize, &edges);
        match find_grid_minor(&host, 3, 3, BUDGET) {
            MinorSearch::Found(m) => m.validate(&grid_graph(3, 3), &host).unwrap(),
            other => panic!("expected found, got {other:?}"),
        }
    }

    #[test]
    fn no_grid_in_path() {
        assert_eq!(
            find_grid_minor(&path_graph(30), 2, 2, BUDGET),
            MinorSearch::NotMinor
        );
    }

    #[test]
    fn largest_square_in_grids() {
        let (n, m) = largest_square_grid_minor(&grid_graph(3, 3), BUDGET);
        assert_eq!(n, 3);
        m.unwrap()
            .validate(&grid_graph(3, 3), &grid_graph(3, 3))
            .unwrap();
        let (n2, _) = largest_square_grid_minor(&grid_graph(2, 5), BUDGET);
        assert_eq!(n2, 2);
        let (n3, _) = largest_square_grid_minor(&path_graph(9), BUDGET);
        assert_eq!(n3, 1);
    }
}
