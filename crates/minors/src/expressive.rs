//! Expressive minors (Definition D.1) and the Lemma D.2 block construction.
//!
//! An *expressive minor map* of a graph `G` into a hypergraph `H` is an
//! onto minor map `μ` (into the primal structure of `H`) together with an
//! injective edge-marking `ρ : E(G) → E(H)` such that each `ρ(e)` touches
//! the images of both endpoints of `e`, and for incident pattern edges
//! `e₁, e₂` at `v` there is a path of hyperedges from `ρ(e₁)` to `ρ(e₂)`
//! whose connecting vertices stay inside `μ(v)` and which uses no marked
//! edge in between. This retains enough edge structure for the pre-jigsaw
//! construction of Lemma D.4 / Theorem 5.2.
//!
//! Lemma D.2 shows that a large enough grid minor of the primal graph can
//! be *coarsened into blocks* (Figure 4) to obtain an expressive grid
//! minor; [`coarsen_grid_model`] implements the block grouping and
//! [`build_expressive`] performs the marker selection (backtracking with a
//! budget, validated post-hoc — the lemma guarantees existence only for
//! galactically large grids, so the implementation verifies the witnesses
//! it produces instead of relying on the combinatorial bound).

use crate::minor_map::MinorMap;
use cqd2_hypergraph::{EdgeId, Graph, Hypergraph, VertexId};
use std::collections::BTreeSet;

/// An expressive minor witness for a pattern graph in a hypergraph.
#[derive(Debug, Clone)]
pub struct ExpressiveMinor {
    /// Pattern edges in a fixed order (ids `(u, v)` with `u < v`).
    pub pattern_edges: Vec<(u32, u32)>,
    /// The onto minor map into the primal structure of the hypergraph.
    pub mu: MinorMap,
    /// `rho[i]` marks the hyperedge for `pattern_edges[i]`.
    pub rho: Vec<EdgeId>,
}

/// Reasons an expressive-minor witness can be invalid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExpressiveError {
    /// The underlying minor map is invalid for the primal graph.
    BadMinorMap(String),
    /// The minor map is not onto.
    NotOnto,
    /// `rho` is not injective.
    NotInjective,
    /// `ρ(e)` misses the image of an endpoint of `e`.
    EndpointMissed(usize),
    /// Condition 3 fails for pattern edges `i` and `j` at vertex `v`.
    NoCleanPath(usize, usize, u32),
}

impl ExpressiveMinor {
    /// Validate the witness per Definition D.1.
    pub fn validate(&self, pattern: &Graph, h: &Hypergraph) -> Result<(), ExpressiveError> {
        let primal = primal_of(h);
        self.mu
            .validate(pattern, &primal)
            .map_err(|e| ExpressiveError::BadMinorMap(e.to_string()))?;
        if !self.mu.is_onto(&primal) {
            return Err(ExpressiveError::NotOnto);
        }
        let mut seen = BTreeSet::new();
        for &e in &self.rho {
            if !seen.insert(e) {
                return Err(ExpressiveError::NotInjective);
            }
        }
        for (i, &(u, v)) in self.pattern_edges.iter().enumerate() {
            let he = self.rho[i];
            let touches = |set: &[u32]| h.edge(he).iter().any(|w| set.contains(&w.0));
            if !touches(&self.mu.branch_sets[u as usize])
                || !touches(&self.mu.branch_sets[v as usize])
            {
                return Err(ExpressiveError::EndpointMissed(i));
            }
        }
        // Condition 3 for every incident pair.
        let marked: BTreeSet<EdgeId> = self.rho.iter().copied().collect();
        for v in 0..pattern.num_vertices() as u32 {
            let incident: Vec<usize> = self
                .pattern_edges
                .iter()
                .enumerate()
                .filter(|(_, &(a, b))| a == v || b == v)
                .map(|(i, _)| i)
                .collect();
            for a in 0..incident.len() {
                for b in (a + 1)..incident.len() {
                    let (i, j) = (incident[a], incident[b]);
                    if !edge_path_exists(
                        h,
                        self.rho[i],
                        self.rho[j],
                        &self.mu.branch_sets[v as usize],
                        &marked,
                    ) {
                        return Err(ExpressiveError::NoCleanPath(i, j, v));
                    }
                }
            }
        }
        Ok(())
    }
}

fn primal_of(h: &Hypergraph) -> Graph {
    let mut g = Graph::empty(h.num_vertices());
    for e in h.edge_ids() {
        let vs = h.edge(e);
        for i in 0..vs.len() {
            for j in (i + 1)..vs.len() {
                g.add_edge(vs[i].0, vs[j].0);
            }
        }
    }
    g
}

/// Is there a path of hyperedges `from = f₀, f₁, …, f_k = to` where
/// consecutive edges share a vertex inside `allowed_vertices` and all
/// intermediate edges are unmarked?
pub fn edge_path_exists(
    h: &Hypergraph,
    from: EdgeId,
    to: EdgeId,
    allowed_vertices: &[u32],
    marked: &BTreeSet<EdgeId>,
) -> bool {
    let allowed: BTreeSet<VertexId> = allowed_vertices.iter().map(|&v| VertexId(v)).collect();
    if from == to {
        return true;
    }
    let mut visited: BTreeSet<EdgeId> = BTreeSet::new();
    visited.insert(from);
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(from);
    while let Some(f) = queue.pop_front() {
        // Expand over shared allowed vertices.
        for &w in h.edge(f) {
            if !allowed.contains(&w) {
                continue;
            }
            for &g in h.incident_edges(w) {
                if visited.contains(&g) {
                    continue;
                }
                if g == to {
                    return true;
                }
                if marked.contains(&g) {
                    continue; // marked edges may not be intermediate
                }
                visited.insert(g);
                queue.push_back(g);
            }
        }
    }
    false
}

/// Coarsen a model of the `m_rows × m_cols` grid into a model of the
/// `n_rows × n_cols` grid by grouping grid vertices into near-equal
/// contiguous blocks (Figure 4a). Vertex `(k, l)` of the coarse grid
/// receives the union of the branch sets of all fine-grid vertices in
/// block `(k, l)`.
pub fn coarsen_grid_model(
    mu_m: &MinorMap,
    m_rows: usize,
    m_cols: usize,
    n_rows: usize,
    n_cols: usize,
) -> MinorMap {
    assert!(n_rows <= m_rows && n_cols <= m_cols);
    assert_eq!(mu_m.branch_sets.len(), m_rows * m_cols);
    let row_block = |i: usize| (i * n_rows / m_rows).min(n_rows - 1);
    let col_block = |j: usize| (j * n_cols / m_cols).min(n_cols - 1);
    let mut branch_sets: Vec<Vec<u32>> = vec![Vec::new(); n_rows * n_cols];
    for i in 0..m_rows {
        for j in 0..m_cols {
            let coarse = row_block(i) * n_cols + col_block(j);
            branch_sets[coarse].extend(mu_m.branch_sets[i * m_cols + j].iter().copied());
        }
    }
    for bs in &mut branch_sets {
        bs.sort_unstable();
        bs.dedup();
    }
    MinorMap { branch_sets }
}

/// Build an expressive minor of the `n × n` grid in `h` from an onto model
/// `mu` of the `n × n` grid in `h`'s primal graph, by backtracking over
/// marker choices (`ρ`). Returns a *validated* witness or `None` if the
/// budget is exhausted or no marking exists for this particular `μ`.
pub fn build_expressive(
    h: &Hypergraph,
    pattern: &Graph,
    mu: &MinorMap,
    budget: u64,
) -> Option<ExpressiveMinor> {
    let pattern_edges: Vec<(u32, u32)> = pattern.edges().collect();
    // Candidates per pattern edge: hyperedges touching both images.
    let candidates: Vec<Vec<EdgeId>> = pattern_edges
        .iter()
        .map(|&(u, v)| {
            h.edge_ids()
                .filter(|&e| {
                    let vs = h.edge(e);
                    vs.iter().any(|w| mu.branch_sets[u as usize].contains(&w.0))
                        && vs.iter().any(|w| mu.branch_sets[v as usize].contains(&w.0))
                })
                .collect()
        })
        .collect();
    let mut rho: Vec<Option<EdgeId>> = vec![None; pattern_edges.len()];
    let mut used: BTreeSet<EdgeId> = BTreeSet::new();
    let mut budget = budget;
    if assign(
        h,
        pattern,
        mu,
        &pattern_edges,
        &candidates,
        0,
        &mut rho,
        &mut used,
        &mut budget,
    ) {
        let witness = ExpressiveMinor {
            pattern_edges,
            mu: mu.clone(),
            rho: rho.into_iter().map(Option::unwrap).collect(),
        };
        witness.validate(pattern, h).ok()?;
        Some(witness)
    } else {
        None
    }
}

#[allow(clippy::too_many_arguments)]
fn assign(
    h: &Hypergraph,
    pattern: &Graph,
    mu: &MinorMap,
    pattern_edges: &[(u32, u32)],
    candidates: &[Vec<EdgeId>],
    i: usize,
    rho: &mut Vec<Option<EdgeId>>,
    used: &mut BTreeSet<EdgeId>,
    budget: &mut u64,
) -> bool {
    if i == pattern_edges.len() {
        // Full check of condition 3 under the complete marking.
        let witness = ExpressiveMinor {
            pattern_edges: pattern_edges.to_vec(),
            mu: mu.clone(),
            rho: rho.iter().map(|e| e.unwrap()).collect(),
        };
        return witness.validate(pattern, h).is_ok();
    }
    if *budget == 0 {
        return false;
    }
    for &e in &candidates[i] {
        if used.contains(&e) {
            continue;
        }
        if *budget == 0 {
            return false;
        }
        *budget -= 1;
        rho[i] = Some(e);
        used.insert(e);
        if assign(
            h,
            pattern,
            mu,
            pattern_edges,
            candidates,
            i + 1,
            rho,
            used,
            budget,
        ) {
            return true;
        }
        used.remove(&e);
        rho[i] = None;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqd2_hypergraph::generators::grid_graph;

    #[test]
    fn identity_grid_is_expressive_in_itself() {
        // For a 2-uniform hypergraph every minor is expressive (App. D).
        let g = grid_graph(3, 3);
        let h = g.to_hypergraph();
        let mu = MinorMap::identity(9);
        let w = build_expressive(&h, &g, &mu, 1_000_000).expect("marking exists");
        w.validate(&g, &h).unwrap();
    }

    #[test]
    fn coarsening_preserves_model_validity() {
        // 4x4 grid identity model coarsened to 2x2.
        let host = grid_graph(4, 4);
        let mu16 = MinorMap::identity(16);
        let mu4 = coarsen_grid_model(&mu16, 4, 4, 2, 2);
        let pattern = grid_graph(2, 2);
        mu4.validate(&pattern, &host).unwrap();
        assert!(mu4.is_onto(&host));
        // Each block has 4 fine vertices.
        assert!(mu4.branch_sets.iter().all(|b| b.len() == 4));
    }

    #[test]
    fn coarsened_model_is_expressive() {
        let host = grid_graph(4, 4);
        let h = host.to_hypergraph();
        let mu4 = coarsen_grid_model(&MinorMap::identity(16), 4, 4, 2, 2);
        let pattern = grid_graph(2, 2);
        let w = build_expressive(&h, &pattern, &mu4, 1_000_000).expect("marking exists");
        w.validate(&pattern, &h).unwrap();
    }

    #[test]
    fn validation_catches_duplicate_markers() {
        let g = grid_graph(2, 2);
        let h = g.to_hypergraph();
        let mu = MinorMap::identity(4);
        let e0 = EdgeId(0);
        let w = ExpressiveMinor {
            pattern_edges: g.edges().collect(),
            mu,
            rho: vec![e0; 4],
        };
        assert_eq!(w.validate(&g, &h), Err(ExpressiveError::NotInjective));
    }

    #[test]
    fn validation_catches_missed_endpoint() {
        let g = grid_graph(2, 2); // edges among {0,1,2,3}
        let h = g.to_hypergraph();
        let mu = MinorMap::identity(4);
        let edges: Vec<(u32, u32)> = g.edges().collect();
        // Assign each pattern edge a DIFFERENT hyperedge id, misaligned.
        let rho: Vec<EdgeId> = (0..edges.len() as u32).map(EdgeId).collect();
        let w = ExpressiveMinor {
            pattern_edges: edges.clone(),
            mu,
            rho: {
                let mut r = rho;
                r.rotate_left(1);
                r
            },
        };
        assert!(matches!(
            w.validate(&g, &h),
            Err(ExpressiveError::EndpointMissed(_)) | Err(ExpressiveError::NoCleanPath(..))
        ));
    }

    #[test]
    fn edge_path_respects_marks() {
        // Hyperpath of 3 edges; middle edge marked blocks the path unless
        // it is an endpoint.
        let h = Hypergraph::new(4, &[vec![0, 1], vec![1, 2], vec![2, 3]]).unwrap();
        let all: Vec<u32> = (0..4).collect();
        let mut marked = BTreeSet::new();
        assert!(edge_path_exists(&h, EdgeId(0), EdgeId(2), &all, &marked));
        marked.insert(EdgeId(1));
        assert!(!edge_path_exists(&h, EdgeId(0), EdgeId(2), &all, &marked));
        // Restricting allowed vertices also blocks.
        let marked_empty = BTreeSet::new();
        assert!(!edge_path_exists(
            &h,
            EdgeId(0),
            EdgeId(2),
            &[0, 1],
            &marked_empty
        ));
    }
}
