//! Graph minors and expressive minors.
//!
//! The paper's lower-bound machinery rests on graph minors of the *dual*
//! hypergraph: Lemma 4.4 turns a minor map of a connected graph `G` into
//! `H^d` (for degree-2 `H`) into a hypergraph dilution of `H` to `G^d`, and
//! the Excluded Grid Theorem (Prop. 4.5) supplies grid minors when the
//! treewidth is large. This crate provides:
//!
//! - [`MinorMap`]: branch-set models `μ : V(G) → 2^{V(F)}` with validation,
//!   composition, and the `make_onto` extension used by Lemma 4.4.
//! - [`finder`]: exact minor testing by branch-set backtracking (with an
//!   explicit node budget — the problem is NP-complete; Theorem 3.5 reduces
//!   *from* it), plus degree-1/degree-2 host simplification with model
//!   lifting.
//! - [`grid`]: grid-minor extraction: exact search for small hosts and the
//!   simplification pipeline for the structured near-grid hosts used in the
//!   experiments.
//! - [`expressive`]: expressive minors (Definition D.1) and the Lemma D.2
//!   block-coarsening construction (Figure 4), used by the bounded-degree
//!   generalization in Section 5.

pub mod expressive;
pub mod finder;
pub mod grid;
pub mod minor_map;

pub use finder::{find_minor, MinorSearch};
pub use grid::find_grid_minor;
pub use minor_map::MinorMap;
