//! Minor maps (branch-set models of graph minors).
//!
//! `G` is a minor of `F` when there is `μ : V(G) → 2^{V(F)}` with
//! (1) each `μ(v)` connected in `F`, (2) the images pairwise disjoint, and
//! (3) for each edge `{u, v}` of `G` an `F`-edge between `μ(u)` and `μ(v)`.
//! For connected `F` the map can be made *onto* (`⋃ μ(v) = V(F)`), which
//! Lemma 4.4 assumes.

use cqd2_hypergraph::Graph;
use std::collections::BTreeSet;

/// A branch-set model witnessing that some graph `G` is a minor of a host
/// graph `F`. `branch_sets[v]` is `μ(v)` (sorted host vertex ids).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MinorMap {
    /// One branch set per vertex of the pattern `G`.
    pub branch_sets: Vec<Vec<u32>>,
}

/// Reasons a minor map can be invalid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MinorMapError {
    /// Wrong number of branch sets for the pattern.
    WrongArity,
    /// A branch set is empty.
    EmptyBranchSet(usize),
    /// A branch set is not connected in the host.
    Disconnected(usize),
    /// Two branch sets intersect.
    Overlap(usize, usize),
    /// No host edge realizes the pattern edge `{u, v}`.
    MissingEdge(u32, u32),
    /// A branch set mentions a host vertex out of range.
    OutOfRange(u32),
}

impl std::fmt::Display for MinorMapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MinorMapError::WrongArity => write!(f, "branch set count != |V(G)|"),
            MinorMapError::EmptyBranchSet(v) => write!(f, "branch set of {v} is empty"),
            MinorMapError::Disconnected(v) => write!(f, "branch set of {v} is disconnected"),
            MinorMapError::Overlap(u, v) => write!(f, "branch sets of {u} and {v} overlap"),
            MinorMapError::MissingEdge(u, v) => {
                write!(f, "no host edge between images of {u} and {v}")
            }
            MinorMapError::OutOfRange(x) => write!(f, "host vertex {x} out of range"),
        }
    }
}

impl std::error::Error for MinorMapError {}

impl MinorMap {
    /// Validate that this map witnesses `pattern ≼ host`.
    pub fn validate(&self, pattern: &Graph, host: &Graph) -> Result<(), MinorMapError> {
        if self.branch_sets.len() != pattern.num_vertices() {
            return Err(MinorMapError::WrongArity);
        }
        let mut owner: Vec<Option<usize>> = vec![None; host.num_vertices()];
        for (v, bs) in self.branch_sets.iter().enumerate() {
            if bs.is_empty() {
                return Err(MinorMapError::EmptyBranchSet(v));
            }
            for &x in bs {
                if x as usize >= host.num_vertices() {
                    return Err(MinorMapError::OutOfRange(x));
                }
                if let Some(u) = owner[x as usize] {
                    return Err(MinorMapError::Overlap(u, v));
                }
                owner[x as usize] = Some(v);
            }
            if !host.is_vertex_set_connected(bs) {
                return Err(MinorMapError::Disconnected(v));
            }
        }
        for (u, v) in pattern.edges() {
            let found = self.branch_sets[u as usize].iter().any(|&x| {
                host.neighbors(x)
                    .iter()
                    .any(|&y| self.branch_sets[v as usize].contains(&y))
            });
            if !found {
                return Err(MinorMapError::MissingEdge(u, v));
            }
        }
        Ok(())
    }

    /// Extend the branch sets so they cover every vertex of a *connected*
    /// host (w.l.o.g. step used by Lemma 4.4): repeatedly absorb an
    /// uncovered host vertex adjacent to a covered one into that
    /// neighbour's branch set. Panics if the host is disconnected from the
    /// model (no absorption order exists).
    pub fn make_onto(&mut self, host: &Graph) {
        let mut owner: Vec<Option<usize>> = vec![None; host.num_vertices()];
        for (v, bs) in self.branch_sets.iter().enumerate() {
            for &x in bs {
                owner[x as usize] = Some(v);
            }
        }
        loop {
            let mut progressed = false;
            for x in 0..host.num_vertices() as u32 {
                if owner[x as usize].is_some() {
                    continue;
                }
                if let Some(&y) = host
                    .neighbors(x)
                    .iter()
                    .find(|&&y| owner[y as usize].is_some())
                {
                    let v = owner[y as usize].expect("checked");
                    owner[x as usize] = Some(v);
                    self.branch_sets[v].push(x);
                    progressed = true;
                }
            }
            if !progressed {
                break;
            }
        }
        assert!(
            owner.iter().all(Option::is_some),
            "host has vertices unreachable from the model; make_onto needs a connected host"
        );
        for bs in &mut self.branch_sets {
            bs.sort_unstable();
        }
    }

    /// Is the map onto (`⋃ μ(v) = V(F)`)?
    pub fn is_onto(&self, host: &Graph) -> bool {
        let covered: BTreeSet<u32> = self
            .branch_sets
            .iter()
            .flat_map(|bs| bs.iter().copied())
            .collect();
        covered.len() == host.num_vertices()
    }

    /// Compose two models: if `self` witnesses `G ≼ M` and `inner`
    /// witnesses `M ≼ F`, the result witnesses `G ≼ F`
    /// (`μ(v) = ⋃_{x ∈ self(v)} inner(x)`).
    pub fn compose(&self, inner: &MinorMap) -> MinorMap {
        let branch_sets = self
            .branch_sets
            .iter()
            .map(|bs| {
                let mut s: Vec<u32> = bs
                    .iter()
                    .flat_map(|&x| inner.branch_sets[x as usize].iter().copied())
                    .collect();
                s.sort_unstable();
                s.dedup();
                s
            })
            .collect();
        MinorMap { branch_sets }
    }

    /// The identity model of a graph in itself.
    pub fn identity(n: usize) -> MinorMap {
        MinorMap {
            branch_sets: (0..n as u32).map(|v| vec![v]).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqd2_hypergraph::generators::{cycle_graph, grid_graph, path_graph};

    #[test]
    fn identity_is_valid_and_onto() {
        let g = grid_graph(2, 3);
        let m = MinorMap::identity(6);
        m.validate(&g, &g).unwrap();
        assert!(m.is_onto(&g));
    }

    #[test]
    fn contraction_model() {
        // C4 is a minor of C5 by contracting one edge.
        let c5 = cycle_graph(5);
        let c4 = cycle_graph(4);
        let m = MinorMap {
            branch_sets: vec![vec![0, 1], vec![2], vec![3], vec![4]],
        };
        m.validate(&c4, &c5).unwrap();
        assert!(m.is_onto(&c5));
    }

    #[test]
    fn invalid_models_rejected() {
        let p3 = path_graph(3);
        let p2 = path_graph(2);
        // Disconnected branch set.
        let m = MinorMap {
            branch_sets: vec![vec![0, 2], vec![1]],
        };
        assert_eq!(m.validate(&p2, &p3), Err(MinorMapError::Disconnected(0)));
        // Overlap.
        let m2 = MinorMap {
            branch_sets: vec![vec![0, 1], vec![1]],
        };
        assert_eq!(m2.validate(&p2, &p3), Err(MinorMapError::Overlap(0, 1)));
        // Missing edge.
        let p4 = path_graph(4);
        let m3 = MinorMap {
            branch_sets: vec![vec![0], vec![3]],
        };
        assert_eq!(m3.validate(&p2, &p4), Err(MinorMapError::MissingEdge(0, 1)));
    }

    #[test]
    fn make_onto_absorbs_everything() {
        let host = grid_graph(3, 3);
        // K1 model at the center; make_onto must swallow the whole grid.
        let k1 = Graph::empty(1);
        let mut m = MinorMap {
            branch_sets: vec![vec![4]],
        };
        m.validate(&k1, &host).unwrap();
        m.make_onto(&host);
        m.validate(&k1, &host).unwrap();
        assert!(m.is_onto(&host));
        assert_eq!(m.branch_sets[0].len(), 9);
    }

    #[test]
    fn make_onto_preserves_validity() {
        let host = grid_graph(2, 4);
        let c4 = cycle_graph(4);
        // C4 on the left square {0,1,4,5}; ids: row-major 2x4.
        let mut m = MinorMap {
            branch_sets: vec![vec![0], vec![1], vec![5], vec![4]],
        };
        m.validate(&c4, &host).unwrap();
        m.make_onto(&host);
        m.validate(&c4, &host).unwrap();
        assert!(m.is_onto(&host));
    }

    #[test]
    fn composition() {
        // C3 ≼ C4 (contract one edge), C4 ≼ C5 (contract one edge)
        // => composed model of C3 in C5.
        let c3 = cycle_graph(3);
        let c4 = cycle_graph(4);
        let c5 = cycle_graph(5);
        let m_c4_in_c5 = MinorMap {
            branch_sets: vec![vec![0, 1], vec![2], vec![3], vec![4]],
        };
        m_c4_in_c5.validate(&c4, &c5).unwrap();
        let m_c3_in_c4 = MinorMap {
            branch_sets: vec![vec![0, 1], vec![2], vec![3]],
        };
        m_c3_in_c4.validate(&c3, &c4).unwrap();
        let composed = m_c3_in_c4.compose(&m_c4_in_c5);
        composed.validate(&c3, &c5).unwrap();
    }
}
