//! Exact minor testing by branch-set backtracking.
//!
//! Minor containment is NP-complete (the paper's Theorem 3.5 reduces *from*
//! it), so the search takes an explicit node budget and reports
//! [`MinorSearch::BudgetExceeded`] when it runs out. Within the budget the
//! answer is exact.
//!
//! The search places the pattern's vertices one at a time (in a
//! connectivity-friendly order), enumerating all connected subsets of free
//! host vertices as candidate branch sets and checking adjacency to the
//! branch sets of previously placed pattern neighbours.

use crate::minor_map::MinorMap;
use cqd2_hypergraph::Graph;

/// Outcome of a budgeted minor search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MinorSearch {
    /// A model was found (validated).
    Found(MinorMap),
    /// Exhaustive search proved the pattern is not a minor.
    NotMinor,
    /// The node budget ran out before the search finished.
    BudgetExceeded,
}

impl MinorSearch {
    /// The model, if found.
    pub fn model(self) -> Option<MinorMap> {
        match self {
            MinorSearch::Found(m) => Some(m),
            _ => None,
        }
    }
}

/// Search for a model of `pattern` in `host`, spending at most `budget`
/// search nodes. Branch sets may grow to any size.
pub fn find_minor(pattern: &Graph, host: &Graph, budget: u64) -> MinorSearch {
    find_minor_capped(pattern, host, budget, usize::MAX)
}

/// Like [`find_minor`], but branch sets are limited to `cap` host vertices.
///
/// A `Found` answer is sound; a `NotMinor` answer only proves there is no
/// model *with branch sets of size ≤ cap*. Iterative deepening over `cap`
/// is how [`crate::grid::find_grid_minor`] stays fast on hosts where small
/// models exist.
pub fn find_minor_capped(pattern: &Graph, host: &Graph, budget: u64, cap: usize) -> MinorSearch {
    if pattern.num_vertices() == 0 {
        return MinorSearch::Found(MinorMap {
            branch_sets: vec![],
        });
    }
    if pattern.num_vertices() > host.num_vertices() || pattern.num_edges() > host.num_edges() {
        return MinorSearch::NotMinor;
    }
    let order = placement_order(pattern);
    let mut st = State {
        pattern,
        host,
        order: &order,
        branch_sets: vec![Vec::new(); pattern.num_vertices()],
        used: vec![false; host.num_vertices()],
        budget,
        cap,
        exhausted: false,
    };
    match st.place(0) {
        true => {
            let m = MinorMap {
                branch_sets: st
                    .branch_sets
                    .iter()
                    .map(|bs| {
                        let mut s = bs.clone();
                        s.sort_unstable();
                        s
                    })
                    .collect(),
            };
            debug_assert!(m.validate(pattern, host).is_ok());
            MinorSearch::Found(m)
        }
        false if st.exhausted => MinorSearch::BudgetExceeded,
        false => MinorSearch::NotMinor,
    }
}

/// Order pattern vertices so each one (after the first per component) is
/// adjacent to an earlier one; higher-degree vertices early.
fn placement_order(g: &Graph) -> Vec<u32> {
    let n = g.num_vertices();
    let mut order = Vec::with_capacity(n);
    let mut placed = vec![false; n];
    while order.len() < n {
        let next = (0..n as u32)
            .filter(|&v| !placed[v as usize])
            .max_by_key(|&v| {
                let attach = g
                    .neighbors(v)
                    .iter()
                    .filter(|&&u| placed[u as usize])
                    .count();
                (attach, g.degree(v))
            })
            .expect("unplaced vertex exists");
        placed[next as usize] = true;
        order.push(next);
    }
    order
}

struct State<'a> {
    pattern: &'a Graph,
    host: &'a Graph,
    order: &'a [u32],
    branch_sets: Vec<Vec<u32>>,
    used: Vec<bool>,
    budget: u64,
    cap: usize,
    exhausted: bool,
}

impl State<'_> {
    fn spend(&mut self) -> bool {
        if self.budget == 0 {
            self.exhausted = true;
            return false;
        }
        self.budget -= 1;
        true
    }

    fn place(&mut self, depth: usize) -> bool {
        if depth == self.order.len() {
            return true;
        }
        if !self.spend() {
            return false;
        }
        let v = self.order[depth];
        // Earlier neighbours whose branch sets we must touch.
        let anchors: Vec<u32> = self
            .pattern
            .neighbors(v)
            .iter()
            .copied()
            .filter(|&u| self.order[..depth].contains(&u))
            .collect();
        let free_count = self.used.iter().filter(|&&u| !u).count();
        let remaining_after = self.order.len() - depth - 1;
        if free_count < remaining_after + 1 {
            return false;
        }
        let max_size = (free_count - remaining_after).min(self.cap);
        // Enumerate connected subsets of free vertices; to avoid duplicates
        // each subset is generated only from its minimum vertex as root.
        let hosts: Vec<u32> = (0..self.host.num_vertices() as u32)
            .filter(|&x| !self.used[x as usize])
            .collect();
        for &root in &hosts {
            if self.grow(depth, v, &anchors, vec![root], root, max_size) {
                return true;
            }
            if self.exhausted {
                return false;
            }
        }
        false
    }

    /// Grow the current candidate branch set (which contains `root` as its
    /// minimum). Tries the candidate as-is whenever it satisfies the anchor
    /// constraints, then all extensions.
    fn grow(
        &mut self,
        depth: usize,
        v: u32,
        anchors: &[u32],
        current: Vec<u32>,
        root: u32,
        max_size: usize,
    ) -> bool {
        if !self.spend() {
            return false;
        }
        // Try this candidate if it touches every anchor's branch set.
        let ok = anchors.iter().all(|&u| {
            current.iter().any(|&x| {
                self.host
                    .neighbors(x)
                    .iter()
                    .any(|&y| self.branch_sets[u as usize].contains(&y))
            })
        });
        if ok {
            for &x in &current {
                self.used[x as usize] = true;
            }
            self.branch_sets[v as usize] = current.clone();
            if self.place(depth + 1) {
                return true;
            }
            self.branch_sets[v as usize].clear();
            for &x in &current {
                self.used[x as usize] = false;
            }
            if self.exhausted {
                return false;
            }
        }
        if current.len() >= max_size {
            return false;
        }
        // Extensions: free neighbours of the current set, larger than root,
        // each extension branch forbids re-adding earlier-tried vertices by
        // only extending with strictly increasing "new" vertices... we use
        // the simpler canonical rule: a vertex may extend the set only if it
        // is greater than the root and not already present; duplicate
        // generation of the same set through different orders is prevented
        // by requiring each added vertex to be the largest so far OR
        // adjacent only via later discovery — for correctness we accept
        // duplicates here and rely on the budget; sets are small.
        let mut exts: Vec<u32> = current
            .iter()
            .flat_map(|&x| self.host.neighbors(x).iter().copied())
            .filter(|&y| y > root && !self.used[y as usize] && !current.contains(&y))
            .collect();
        exts.sort_unstable();
        exts.dedup();
        for (i, &y) in exts.iter().enumerate() {
            // Canonicalization: skip extensions smaller than the last added
            // vertex unless they only just became reachable. (Heuristic
            // duplicate reduction; exhaustiveness is preserved because we
            // still try every superset shape through some order.)
            let _ = i;
            let mut next = current.clone();
            next.push(y);
            if self.grow(depth, v, anchors, next, root, max_size) {
                return true;
            }
            if self.exhausted {
                return false;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqd2_hypergraph::generators::{complete_graph, cycle_graph, grid_graph, path_graph};

    const BUDGET: u64 = 2_000_000;

    fn assert_minor(pattern: &Graph, host: &Graph) {
        match find_minor(pattern, host, BUDGET) {
            MinorSearch::Found(m) => m.validate(pattern, host).unwrap(),
            other => panic!("expected minor, got {other:?}"),
        }
    }

    fn assert_not_minor(pattern: &Graph, host: &Graph) {
        assert_eq!(find_minor(pattern, host, BUDGET), MinorSearch::NotMinor);
    }

    #[test]
    fn subgraphs_are_minors() {
        assert_minor(&path_graph(4), &grid_graph(2, 3));
        assert_minor(&cycle_graph(4), &grid_graph(2, 2));
        assert_minor(&cycle_graph(6), &grid_graph(2, 3));
    }

    #[test]
    fn contractions_are_minors() {
        // C3 is a minor of any longer cycle.
        assert_minor(&cycle_graph(3), &cycle_graph(7));
        // K4 is a minor of the 3x3 grid? K4 needs a vertex of "branch
        // degree" 3 pairwise adjacent sets. The 3x3 grid is planar and K4
        // is planar: yes, K4 ≼ grid(3,3).
        assert_minor(&complete_graph(4), &grid_graph(3, 3));
    }

    #[test]
    fn non_minors_rejected() {
        // K4 is not a minor of any cycle (treewidth 3 vs 2).
        assert_not_minor(&complete_graph(4), &cycle_graph(8));
        // C4 is not a minor of a tree/path.
        assert_not_minor(&cycle_graph(4), &path_graph(8));
        // K5 is not a minor of a planar graph.
        assert_not_minor(&complete_graph(5), &grid_graph(3, 3));
    }

    #[test]
    fn counting_bounds_reject_fast() {
        assert_not_minor(&complete_graph(5), &complete_graph(4));
        assert_not_minor(&cycle_graph(4), &path_graph(3));
    }

    #[test]
    fn grid_in_grid() {
        assert_minor(&grid_graph(2, 2), &grid_graph(3, 3));
        assert_minor(&grid_graph(2, 3), &grid_graph(3, 3));
        assert_minor(&grid_graph(3, 3), &grid_graph(3, 3));
    }

    #[test]
    fn budget_exhaustion_reported() {
        let r = find_minor(&grid_graph(3, 3), &grid_graph(4, 4), 10);
        assert_eq!(r, MinorSearch::BudgetExceeded);
    }

    #[test]
    fn empty_pattern_always_minor() {
        assert!(matches!(
            find_minor(&Graph::empty(0), &path_graph(2), 100),
            MinorSearch::Found(_)
        ));
    }

    #[test]
    fn single_vertex_pattern() {
        assert_minor(&Graph::empty(1), &path_graph(3));
    }
}
