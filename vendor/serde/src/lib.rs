//! Offline stand-in for `serde`.
//!
//! The build environment has no registry access, so this vendored crate
//! provides a compact serialization framework with the same *spelling* as
//! serde's derive-based surface — `#[derive(Serialize, Deserialize)]`,
//! `use serde::{Serialize, Deserialize}` — so the workspace's types
//! persist and reload without the real crate. The data model is a
//! self-describing [`Value`] tree; [`json`] renders and parses it.
//!
//! Differences from real serde, deliberately accepted:
//! - one data model ([`Value`]), no zero-copy Serializer/Deserializer pair;
//! - derives support non-generic structs and enums only (all this
//!   workspace needs);
//! - enums use external tagging (`{"Variant": …}` / `"Variant"`), the
//!   same wire shape serde_json's default produces.

// Let this crate's own tests use the derives, which expand to `::serde::…`.
extern crate self as serde;

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A self-describing serialized value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Absent / `Option::None`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer (always `< 0`; non-negatives normalize to `U64`).
    I64(i64),
    /// Floating point.
    F64(f64),
    /// String.
    Str(String),
    /// Sequence.
    Seq(Vec<Value>),
    /// Ordered string-keyed map (struct fields, map entries).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The map entries, if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The sequence elements, if this is a sequence.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Look up a struct field / map key.
pub fn map_get<'a>(entries: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// An error with the given message.
    pub fn new(msg: impl Into<String>) -> Error {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can serialize themselves into a [`Value`].
pub trait Serialize {
    /// Serialize into the value tree.
    fn to_value(&self) -> Value;
}

/// Types that can reconstruct themselves from a [`Value`].
pub trait Deserialize: Sized {
    /// Deserialize from the value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// --------------------------------------------------------------------
// Primitive impls.
// --------------------------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::new(format!("{n} out of range for {}", stringify!($t)))),
                    _ => Err(Error::new(concat!("expected unsigned integer for ", stringify!($t)))),
                }
            }
        }
    )*};
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                if *self >= 0 {
                    Value::U64(*self as u64)
                } else {
                    Value::I64(*self as i64)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::new(format!("{n} out of range for {}", stringify!($t)))),
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::new(format!("{n} out of range for {}", stringify!($t)))),
                    _ => Err(Error::new(concat!("expected integer for ", stringify!($t)))),
                }
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);
impl_signed!(i8, i16, i32, i64, isize);

// `u128` exceeds the `Value` integer range: values that fit in `u64`
// serialize as numbers, larger ones as decimal strings (lossless either
// way). The serving layer's answer counts (`Answer::Count`) need this.
impl Serialize for u128 {
    fn to_value(&self) -> Value {
        match u64::try_from(*self) {
            Ok(n) => Value::U64(n),
            Err(_) => Value::Str(self.to_string()),
        }
    }
}

impl Deserialize for u128 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::U64(n) => Ok(u128::from(*n)),
            Value::Str(s) => s
                .parse::<u128>()
                .map_err(|_| Error::new(format!("`{s}` is not a u128"))),
            _ => Err(Error::new("expected unsigned integer or string for u128")),
        }
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::new("expected bool")),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::F64(x) => Ok(*x),
            Value::U64(n) => Ok(*n as f64),
            Value::I64(n) => Ok(*n as f64),
            _ => Err(Error::new("expected number for f64")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::new("expected string")),
        }
    }
}

// --------------------------------------------------------------------
// Container impls.
// --------------------------------------------------------------------

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_seq()
            .ok_or_else(|| Error::new("expected sequence for Vec"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v.as_seq().ok_or_else(|| Error::new("expected 2-tuple"))?;
        if s.len() != 2 {
            return Err(Error::new(format!(
                "expected 2-tuple, got {} elements",
                s.len()
            )));
        }
        Ok((A::from_value(&s[0])?, B::from_value(&s[1])?))
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_seq()
            .ok_or_else(|| Error::new("expected sequence for BTreeSet"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for std::sync::Arc<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(std::sync::Arc::new)
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_map()
            .ok_or_else(|| Error::new("expected map for BTreeMap"))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

// --------------------------------------------------------------------
// JSON codec.
// --------------------------------------------------------------------

/// Render and parse [`Value`] trees as JSON text.
pub mod json {
    use super::{Deserialize, Error, Serialize, Value};
    use std::fmt::Write as _;

    /// Serialize to compact JSON.
    pub fn to_string<T: Serialize>(x: &T) -> String {
        let mut out = String::new();
        write_value(&mut out, &x.to_value(), None, 0);
        out
    }

    /// Serialize to human-readable, indented JSON.
    pub fn to_string_pretty<T: Serialize>(x: &T) -> String {
        let mut out = String::new();
        write_value(&mut out, &x.to_value(), Some(2), 0);
        out
    }

    /// Deserialize from JSON text.
    pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
        T::from_value(&parse(s)?)
    }

    /// Parse JSON text into a [`Value`].
    pub fn parse(s: &str) -> Result<Value, Error> {
        let bytes = s.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(Error::new(format!("trailing characters at byte {pos}")));
        }
        Ok(v)
    }

    fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
        match v {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::U64(n) => {
                let _ = write!(out, "{n}");
            }
            Value::I64(n) => {
                let _ = write!(out, "{n}");
            }
            Value::F64(x) => {
                if x.is_finite() {
                    // An integral f64 prints without a dot and reloads as an
                    // integer Value; f64::from_value accepts that, so the
                    // typed roundtrip is still exact.
                    let _ = write!(out, "{x}");
                } else {
                    out.push_str("null"); // JSON has no NaN/Inf
                }
            }
            Value::Str(s) => write_escaped(out, s),
            Value::Seq(items) => write_bracketed(
                out,
                indent,
                level,
                '[',
                ']',
                items.len(),
                |out, i, ind, lvl| write_value(out, &items[i], ind, lvl),
            ),
            Value::Map(entries) => write_bracketed(
                out,
                indent,
                level,
                '{',
                '}',
                entries.len(),
                |out, i, ind, lvl| {
                    write_escaped(out, &entries[i].0);
                    out.push(':');
                    if ind.is_some() {
                        out.push(' ');
                    }
                    write_value(out, &entries[i].1, ind, lvl);
                },
            ),
        }
    }

    /// Shared layout for `[...]` / `{...}` with optional pretty-printing.
    fn write_bracketed(
        out: &mut String,
        indent: Option<usize>,
        level: usize,
        open: char,
        close: char,
        n: usize,
        mut item: impl FnMut(&mut String, usize, Option<usize>, usize),
    ) {
        out.push(open);
        for i in 0..n {
            if i > 0 {
                out.push(',');
            }
            if let Some(w) = indent {
                out.push('\n');
                out.push_str(&" ".repeat(w * (level + 1)));
            }
            item(out, i, indent, level + 1);
        }
        if n > 0 {
            if let Some(w) = indent {
                out.push('\n');
                out.push_str(&" ".repeat(w * level));
            }
        }
        out.push(close);
    }

    fn write_escaped(out: &mut String, s: &str) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    let _ = write!(out, "\\u{:04x}", c as u32);
                }
                c => out.push(c),
            }
        }
        out.push('"');
    }

    fn skip_ws(b: &[u8], pos: &mut usize) {
        while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        }
    }

    fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, Error> {
        skip_ws(b, pos);
        match b.get(*pos) {
            None => Err(Error::new("unexpected end of JSON")),
            Some(b'n') => parse_literal(b, pos, "null", Value::Null),
            Some(b't') => parse_literal(b, pos, "true", Value::Bool(true)),
            Some(b'f') => parse_literal(b, pos, "false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(parse_string(b, pos)?)),
            Some(b'[') => {
                *pos += 1;
                let mut items = Vec::new();
                skip_ws(b, pos);
                if b.get(*pos) == Some(&b']') {
                    *pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(parse_value(b, pos)?);
                    skip_ws(b, pos);
                    match b.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b']') => {
                            *pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => return Err(Error::new(format!("expected ',' or ']' at byte {pos}"))),
                    }
                }
            }
            Some(b'{') => {
                *pos += 1;
                let mut entries = Vec::new();
                skip_ws(b, pos);
                if b.get(*pos) == Some(&b'}') {
                    *pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    skip_ws(b, pos);
                    let key = parse_string(b, pos)?;
                    skip_ws(b, pos);
                    if b.get(*pos) != Some(&b':') {
                        return Err(Error::new(format!("expected ':' at byte {pos}")));
                    }
                    *pos += 1;
                    let val = parse_value(b, pos)?;
                    entries.push((key, val));
                    skip_ws(b, pos);
                    match b.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b'}') => {
                            *pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => return Err(Error::new(format!("expected ',' or '}}' at byte {pos}"))),
                    }
                }
            }
            Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
            Some(c) => Err(Error::new(format!(
                "unexpected character '{}' at byte {pos}",
                *c as char
            ))),
        }
    }

    fn parse_literal(b: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value, Error> {
        if b[*pos..].starts_with(lit.as_bytes()) {
            *pos += lit.len();
            Ok(v)
        } else {
            Err(Error::new(format!("invalid literal at byte {pos}")))
        }
    }

    fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, Error> {
        if b.get(*pos) != Some(&b'"') {
            return Err(Error::new(format!("expected string at byte {pos}")));
        }
        *pos += 1;
        let mut out = String::new();
        loop {
            match b.get(*pos) {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    *pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    *pos += 1;
                    match b.get(*pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = b
                                .get(*pos + 1..*pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            *pos += 4;
                        }
                        _ => return Err(Error::new("bad escape")),
                    }
                    *pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest =
                        std::str::from_utf8(&b[*pos..]).map_err(|_| Error::new("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    *pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, Error> {
        let start = *pos;
        if b.get(*pos) == Some(&b'-') {
            *pos += 1;
        }
        let mut is_float = false;
        while let Some(&c) = b.get(*pos) {
            match c {
                b'0'..=b'9' => *pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    *pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&b[start..*pos]).expect("ascii");
        if !is_float {
            if let Some(stripped) = text.strip_prefix('-') {
                let n: i64 = text
                    .parse()
                    .map_err(|_| Error::new(format!("bad number '{text}'")))?;
                let _ = stripped;
                return Ok(Value::I64(n));
            }
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("bad number '{text}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        for v in [0u64, 1, u64::MAX] {
            let j = json::to_string(&v);
            assert_eq!(json::from_str::<u64>(&j).unwrap(), v);
        }
        assert_eq!(json::to_string(&-5i64), "-5");
        assert_eq!(json::from_str::<i64>("-5").unwrap(), -5);
        assert!(json::from_str::<bool>("true").unwrap());
        let s = String::from("line\n\"quoted\" \\ tab\t");
        assert_eq!(json::from_str::<String>(&json::to_string(&s)).unwrap(), s);
    }

    #[test]
    fn u128_roundtrips_with_string_spillover() {
        for v in [0u128, 7, u128::from(u64::MAX)] {
            let j = json::to_string(&v);
            assert_eq!(json::from_str::<u128>(&j).unwrap(), v);
        }
        let big = u128::from(u64::MAX) + 1;
        let j = json::to_string(&big);
        assert_eq!(j, format!("\"{big}\""));
        assert_eq!(json::from_str::<u128>(&j).unwrap(), big);
        assert!(json::from_str::<u128>("\"banana\"").is_err());
    }

    #[test]
    fn containers_roundtrip() {
        let v: Vec<Option<u32>> = vec![Some(1), None, Some(3)];
        let j = json::to_string(&v);
        assert_eq!(j, "[1,null,3]");
        assert_eq!(json::from_str::<Vec<Option<u32>>>(&j).unwrap(), v);
        let pairs: Vec<(usize, usize)> = vec![(0, 1), (1, 2)];
        let j = json::to_string(&pairs);
        assert_eq!(json::from_str::<Vec<(usize, usize)>>(&j).unwrap(), pairs);
        let mut m = BTreeMap::new();
        m.insert("a".to_string(), vec![1u64, 2]);
        let j = json::to_string(&m);
        assert_eq!(j, "{\"a\":[1,2]}");
        assert_eq!(json::from_str::<BTreeMap<String, Vec<u64>>>(&j).unwrap(), m);
    }

    #[test]
    fn pretty_output_parses_back() {
        let v: Vec<Vec<u8>> = vec![vec![1, 2], vec![]];
        let pretty = json::to_string_pretty(&v);
        assert!(pretty.contains('\n'));
        assert_eq!(json::from_str::<Vec<Vec<u8>>>(&pretty).unwrap(), v);
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(json::from_str::<u64>("[1").is_err());
        assert!(json::from_str::<u64>("12 34").is_err());
        assert!(json::from_str::<u64>("\"x\"").is_err());
        assert!(json::from_str::<bool>("maybe").is_err());
    }

    #[derive(Serialize, Deserialize, Debug, PartialEq)]
    struct Point {
        x: u32,
        y: Vec<i32>,
    }

    #[derive(Serialize, Deserialize, Debug, PartialEq)]
    struct Wrapper(u32, String);

    #[derive(Serialize, Deserialize, Debug, PartialEq)]
    enum Shape {
        Dot,
        Line(u32, u32),
        Poly { sides: Vec<u32>, closed: bool },
    }

    #[test]
    fn derived_struct_roundtrip() {
        let p = Point {
            x: 7,
            y: vec![-1, 2],
        };
        let j = json::to_string(&p);
        assert_eq!(j, "{\"x\":7,\"y\":[-1,2]}");
        assert_eq!(json::from_str::<Point>(&j).unwrap(), p);
        let w = Wrapper(3, "hi".into());
        assert_eq!(json::from_str::<Wrapper>(&json::to_string(&w)).unwrap(), w);
    }

    #[test]
    fn derived_enum_roundtrip() {
        for s in [
            Shape::Dot,
            Shape::Line(1, 2),
            Shape::Poly {
                sides: vec![3, 4],
                closed: true,
            },
        ] {
            let j = json::to_string(&s);
            assert_eq!(json::from_str::<Shape>(&j).unwrap(), s);
        }
        assert_eq!(json::to_string(&Shape::Dot), "\"Dot\"");
        assert_eq!(json::to_string(&Shape::Line(1, 2)), "{\"Line\":[1,2]}");
    }
}
