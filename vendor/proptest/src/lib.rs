//! Offline stand-in for `proptest`.
//!
//! The build environment has no registry access, so this vendored crate
//! supports the subset of proptest the workspace's property tests use:
//! the `proptest! { #![proptest_config(…)] #[test] fn f(x in strategy) {…} }`
//! macro, integer-range, `any::<T>()`, and tuple strategies,
//! `proptest::collection::vec`, and `prop_assert!` / `prop_assert_eq!` /
//! `prop_assume!`. Cases are generated from a PRNG seeded per test-function
//! name, so runs are deterministic. Failing inputs are reported via
//! `Debug`; there is **no shrinking** — failures print the raw case.

use rand::rngs::StdRng;

/// Generation source passed to strategies (a seeded PRNG).
pub type TestRng = StdRng;

/// How a single generated case ended.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case did not satisfy a `prop_assume!` precondition.
    Reject,
    /// An assertion failed, with a rendered message.
    Fail(String),
}

/// Per-test configuration (`#![proptest_config(…)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` accepted cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value: std::fmt::Debug;

    /// Generate one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
    )*};
}

impl_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized + std::fmt::Debug {
    /// Generate an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rand::RngCore::next_u64(rng) as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rand::RngCore::next_u64(rng) & 1 == 1
    }
}

/// Strategy produced by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The unconstrained strategy for `T` (proptest's `any::<T>()`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

// Tuples of strategies sample component-wise, as in proptest.
impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Strategy for `Vec<S::Value>` with length drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    /// `vec(element, len_range)` as in proptest.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = if self.len.is_empty() {
                0
            } else {
                rand::Rng::gen_range(rng, self.len.clone())
            };
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Seed a per-test generator from the test's name (deterministic runs).
pub fn rng_for_test(name: &str) -> TestRng {
    // FNV-1a over the name; any stable hash works.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    rand::SeedableRng::seed_from_u64(h)
}

/// Assert within a proptest body; failure reports the generated case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(::std::format!($($fmt)*)));
        }
    };
}

/// Equality assertion within a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let l = $left;
        let r = $right;
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
}

/// Discard the current case unless the precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// The proptest entry-point macro: expands each `fn` into a `#[test]`
/// that loops over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run $config; $($rest)*);
    };
    (@run $config:expr; $(
        #[test]
        fn $name:ident ( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
    )*) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::rng_for_test(concat!(module_path!(), "::", stringify!($name)));
                let mut accepted: u32 = 0;
                let mut attempts: u32 = 0;
                let max_attempts = config.cases.saturating_mul(20).max(100);
                while accepted < config.cases && attempts < max_attempts {
                    attempts += 1;
                    $(let $arg = $crate::Strategy::sample(&($strategy), &mut rng);)+
                    let case_desc = || {
                        let mut s = ::std::string::String::new();
                        $(
                            s.push_str(stringify!($arg));
                            s.push_str(" = ");
                            s.push_str(&::std::format!("{:?}", $arg));
                            s.push_str("; ");
                        )+
                        s
                    };
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match outcome {
                        ::std::result::Result::Ok(()) => accepted += 1,
                        ::std::result::Result::Err($crate::TestCaseError::Reject) => {}
                        ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest case failed after {} accepted cases: {}\n  case: {}",
                                accepted, msg, case_desc()
                            );
                        }
                    }
                }
                assert!(
                    accepted > 0,
                    "proptest: every generated case was rejected by prop_assume! ({} attempts)",
                    attempts
                );
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run $crate::ProptestConfig::default(); $($rest)*);
    };
}

/// Everything a test file usually imports.
pub mod prelude {
    /// Namespace alias so `proptest::collection::vec` works inside the
    /// macro-expanded body when the prelude is glob-imported.
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, proptest, Arbitrary, ProptestConfig,
        Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_respected(x in 3u64..10, v in collection::vec(any::<u8>(), 0..4)) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(v.len() < 4);
        }

        #[test]
        fn assume_rejects(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn deterministic_rng_per_name() {
        let mut a = crate::rng_for_test("t");
        let mut b = crate::rng_for_test("t");
        assert_eq!(
            rand::RngCore::next_u64(&mut a),
            rand::RngCore::next_u64(&mut b)
        );
    }

    #[test]
    fn prop_asserts_produce_fail_and_reject() {
        // The macros communicate through `TestCaseError`; the expansion
        // turns `Fail` into a panic and `Reject` into a discarded case.
        fn failing() -> Result<(), TestCaseError> {
            prop_assert!(1 == 2, "one is not two");
            Ok(())
        }
        assert!(matches!(failing(), Err(TestCaseError::Fail(m)) if m.contains("one is not two")));
        fn rejecting() -> Result<(), TestCaseError> {
            prop_assume!(false);
            Ok(())
        }
        assert!(matches!(rejecting(), Err(TestCaseError::Reject)));
        fn eq_failing() -> Result<(), TestCaseError> {
            prop_assert_eq!(1 + 1, 3);
            Ok(())
        }
        assert!(matches!(eq_failing(), Err(TestCaseError::Fail(_))));
    }
}
