//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this vendored crate
//! provides the *subset* of the rand 0.8 API the workspace uses —
//! `StdRng::seed_from_u64`, `Rng::{gen_range, gen_bool}`, and
//! `SliceRandom::{choose, shuffle}` — backed by xoshiro256++ seeded via
//! SplitMix64. Deterministic for a given seed, which is all the seeded
//! generators and tests rely on; it makes no statistical-quality claims
//! beyond "good enough for synthetic test instances".

/// Seeding from a `u64`, as in rand's `SeedableRng` (only the
/// `seed_from_u64` entry point is provided).
pub trait SeedableRng: Sized {
    /// Construct the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a range by [`Rng::gen_range`].
pub trait SampleUniform: Copy {
    /// Sample uniformly from `[low, high)` (`high > low`).
    fn sample_half_open(rng: &mut dyn RngCore, low: Self, high: Self) -> Self;
}

/// Object-safe core: a source of uniform `u64`s.
pub trait RngCore {
    /// The next 64 uniform bits.
    fn next_u64(&mut self) -> u64;
}

/// Range argument accepted by [`Rng::gen_range`] (`a..b` and `a..=b`).
pub trait SampleRange<T> {
    /// Sample a value from the range.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

impl<T: SampleUniform + RangeStep> SampleRange<T> for core::ops::Range<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T {
        assert!(!self.is_empty(), "gen_range: empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform + RangeStep> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_half_open(rng, lo, hi.successor())
    }
}

/// Helper for inclusive ranges: the next representable value.
pub trait RangeStep: PartialOrd {
    /// `self + 1`, panicking on overflow (never hit by our callers).
    fn successor(self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(rng: &mut dyn RngCore, low: Self, high: Self) -> Self {
                let span = (high as i128 - low as i128) as u128;
                // Multiply-shift rejection-free mapping; bias is < 2^-64,
                // irrelevant for test-instance generation.
                let r = rng.next_u64() as u128;
                low + ((r * span) >> 64) as $t
            }
        }
        impl RangeStep for $t {
            fn successor(self) -> Self {
                self.checked_add(1).expect("gen_range: inclusive upper bound at type max")
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The user-facing sampling interface (subset of rand's `Rng`).
pub trait Rng: RngCore + Sized {
    /// Uniform sample from `range` (`a..b` or `a..=b`).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// Bernoulli sample with success probability `p ∈ [0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} outside [0, 1]");
        // 53 uniform mantissa bits, exact for p in [0,1].
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }
}

impl<T: RngCore + Sized> Rng for T {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Stand-in for rand's `StdRng`: xoshiro256++ (Blackman–Vigna),
    /// seeded through SplitMix64 exactly as the reference implementation
    /// recommends. Not the ChaCha12 stream of the real `StdRng`, but the
    /// workspace only requires per-seed determinism, not cross-crate
    /// stream compatibility.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the 256-bit state.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers (subset of rand's `seq` module).
pub mod seq {
    use super::Rng;

    /// Random selection from slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// A uniformly random element, `None` on an empty slice.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    /// In-place Fisher–Yates shuffle for mutable slices.
    pub trait SliceRandomMut {
        /// Shuffle the slice uniformly.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }

    impl<T> SliceRandomMut for [T] {
        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..=i));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
        let mut c = StdRng::seed_from_u64(43);
        let same: Vec<u64> = (0..8).map(|_| c.gen_range(0..100)).collect();
        assert_ne!(same, vec![same[0]; 8], "stream should vary");
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..10);
            assert!((3..10).contains(&x));
            let y = rng.gen_range(2u32..=5);
            assert!((2..=5).contains(&y));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn choose_covers_slice() {
        let mut rng = StdRng::seed_from_u64(5);
        let xs = [10, 20, 30];
        let mut seen = [false; 3];
        for _ in 0..200 {
            let &x = xs.choose(&mut rng).unwrap();
            seen[(x / 10 - 1) as usize] = true;
        }
        assert_eq!(seen, [true; 3]);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
