//! Derive macros for the vendored `serde` stand-in.
//!
//! Implemented directly on `proc_macro` token trees (the registry mirror
//! is unreachable, so `syn`/`quote` are unavailable). Supports exactly
//! what the workspace derives on: non-generic structs (named, tuple,
//! unit) and non-generic enums whose variants are unit, tuple, or named.
//! Anything else fails loudly at compile time.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What a `#[derive]` input turned out to be.
enum Input {
    NamedStruct {
        name: String,
        fields: Vec<String>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    UnitStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

/// Derive `serde::Serialize` (vendored stand-in semantics).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(item: TokenStream) -> TokenStream {
    let input = parse_input(item);
    gen_serialize(&input)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derive `serde::Deserialize` (vendored stand-in semantics).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(item: TokenStream) -> TokenStream {
    let input = parse_input(item);
    gen_deserialize(&input)
        .parse()
        .expect("generated Deserialize impl parses")
}

// --------------------------------------------------------------------
// Parsing.
// --------------------------------------------------------------------

fn parse_input(item: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = item.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let keyword = match &tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde derive: expected `struct` or `enum`, found {other:?}"),
    };
    i += 1;
    let name = match &tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde derive: expected type name, found {other:?}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde derive (vendored): generic type `{name}` is not supported");
    }
    match keyword.as_str() {
        "struct" => match &tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Input::NamedStruct {
                name,
                fields: parse_named_fields(g.stream()),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Input::TupleStruct {
                    name,
                    arity: count_tuple_fields(g.stream()),
                }
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Input::UnitStruct { name },
            other => panic!("serde derive: malformed struct body: {other:?}"),
        },
        "enum" => match &tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Input::Enum {
                name,
                variants: parse_variants(g.stream()),
            },
            other => panic!("serde derive: malformed enum body: {other:?}"),
        },
        kw => panic!("serde derive: unsupported item kind `{kw}`"),
    }
}

/// Advance past outer attributes (`#[...]` pairs) and a visibility
/// qualifier (`pub`, `pub(...)`).
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // '#' then the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// Field names of a named-fields body `{ a: T, b: U, ... }`.
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let fname = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde derive: expected field name, found {other:?}"),
        };
        fields.push(fname);
        i += 1;
        assert!(
            matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ':'),
            "serde derive: expected ':' after field name"
        );
        i += 1;
        skip_type(&tokens, &mut i);
        if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    fields
}

/// Advance past one type, stopping at a top-level `,`. Only `<`/`>`
/// nesting needs tracking — parenthesized/bracketed parts arrive as
/// single `Group` tokens.
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0i32;
    while let Some(t) = tokens.get(*i) {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => return,
            _ => {}
        }
        *i += 1;
    }
}

/// Number of fields in a tuple body `(T, U, ...)`.
fn count_tuple_fields(body: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 0;
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        count += 1;
        skip_type(&tokens, &mut i);
        if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    count
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde derive: expected variant name, found {other:?}"),
        };
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let k = VariantKind::Tuple(count_tuple_fields(g.stream()));
                i += 1;
                k
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let k = VariantKind::Named(parse_named_fields(g.stream()));
                i += 1;
                k
            }
            _ => VariantKind::Unit,
        };
        if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            panic!("serde derive (vendored): explicit discriminants are not supported");
        }
        variants.push(Variant { name, kind });
        if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    variants
}

// --------------------------------------------------------------------
// Code generation (as source text, then re-parsed).
// --------------------------------------------------------------------

fn gen_serialize(input: &Input) -> String {
    match input {
        Input::NamedStruct { name, fields } => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            impl_serialize(
                name,
                &format!("::serde::Value::Map(::std::vec![{}])", entries.join(", ")),
            )
        }
        Input::TupleStruct { name, arity } => {
            let items: Vec<String> = (0..*arity)
                .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                .collect();
            impl_serialize(
                name,
                &format!("::serde::Value::Seq(::std::vec![{}])", items.join(", ")),
            )
        }
        Input::UnitStruct { name } => impl_serialize(name, "::serde::Value::Null"),
        Input::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vn} => ::serde::Value::Str(::std::string::String::from(\"{vn}\"))"
                        ),
                        VariantKind::Tuple(arity) => {
                            let binders: Vec<String> = (0..*arity).map(|k| format!("f{k}")).collect();
                            let items: Vec<String> = binders
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!(
                                "{name}::{vn}({bs}) => ::serde::Value::Map(::std::vec![(::std::string::String::from(\"{vn}\"), ::serde::Value::Seq(::std::vec![{items}]))])",
                                bs = binders.join(", "),
                                items = items.join(", ")
                            )
                        }
                        VariantKind::Named(fields) => {
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {fs} }} => ::serde::Value::Map(::std::vec![(::std::string::String::from(\"{vn}\"), ::serde::Value::Map(::std::vec![{entries}]))])",
                                fs = fields.join(", "),
                                entries = entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            impl_serialize(name, &format!("match self {{ {} }}", arms.join(", ")))
        }
    }
}

fn impl_serialize(name: &str, body: &str) -> String {
    format!(
        "impl ::serde::Serialize for {name} {{\n fn to_value(&self) -> ::serde::Value {{ {body} }}\n}}"
    )
}

fn gen_deserialize(input: &Input) -> String {
    let body = match input {
        Input::NamedStruct { name, fields } => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(::serde::map_get(m, \"{f}\").ok_or_else(|| ::serde::Error::new(\"missing field `{f}` of {name}\"))?)?"
                    )
                })
                .collect();
            format!(
                "let m = v.as_map().ok_or_else(|| ::serde::Error::new(\"expected map for struct {name}\"))?;\n\
                 ::std::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Input::TupleStruct { name, arity } => {
            let items: Vec<String> = (0..*arity)
                .map(|k| format!("::serde::Deserialize::from_value(&s[{k}])?"))
                .collect();
            format!(
                "let s = v.as_seq().ok_or_else(|| ::serde::Error::new(\"expected sequence for struct {name}\"))?;\n\
                 if s.len() != {arity} {{ return ::std::result::Result::Err(::serde::Error::new(\"wrong arity for {name}\")); }}\n\
                 ::std::result::Result::Ok({name}({}))",
                items.join(", ")
            )
        }
        Input::UnitStruct { name } => format!(
            "match v {{ ::serde::Value::Null => ::std::result::Result::Ok({name}), _ => ::std::result::Result::Err(::serde::Error::new(\"expected null for unit struct {name}\")) }}"
        ),
        Input::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| format!("\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),", vn = v.name))
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Tuple(arity) => {
                            let items: Vec<String> = (0..*arity)
                                .map(|k| format!("::serde::Deserialize::from_value(&s[{k}])?"))
                                .collect();
                            Some(format!(
                                "\"{vn}\" => {{\n\
                                   let s = payload.as_seq().ok_or_else(|| ::serde::Error::new(\"expected sequence payload for {name}::{vn}\"))?;\n\
                                   if s.len() != {arity} {{ return ::std::result::Result::Err(::serde::Error::new(\"wrong arity for {name}::{vn}\")); }}\n\
                                   ::std::result::Result::Ok({name}::{vn}({items}))\n\
                                 }}",
                                items = items.join(", ")
                            ))
                        }
                        VariantKind::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::from_value(::serde::map_get(m, \"{f}\").ok_or_else(|| ::serde::Error::new(\"missing field `{f}` of {name}::{vn}\"))?)?"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "\"{vn}\" => {{\n\
                                   let m = payload.as_map().ok_or_else(|| ::serde::Error::new(\"expected map payload for {name}::{vn}\"))?;\n\
                                   ::std::result::Result::Ok({name}::{vn} {{ {inits} }})\n\
                                 }}",
                                inits = inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "match v {{\n\
                   ::serde::Value::Str(s) => match s.as_str() {{\n\
                     {unit_arms}\n\
                     other => ::std::result::Result::Err(::serde::Error::new(::std::format!(\"unknown unit variant `{{other}}` of {name}\"))),\n\
                   }},\n\
                   ::serde::Value::Map(entries) if entries.len() == 1 => {{\n\
                     let (tag, payload) = &entries[0];\n\
                     let _ = payload; // unused when every variant is a unit variant\n\
                     match tag.as_str() {{\n\
                       {data_arms}\n\
                       other => ::std::result::Result::Err(::serde::Error::new(::std::format!(\"unknown variant `{{other}}` of {name}\"))),\n\
                     }}\n\
                   }},\n\
                   _ => ::std::result::Result::Err(::serde::Error::new(\"expected string or single-entry map for enum {name}\")),\n\
                 }}",
                unit_arms = unit_arms.join("\n"),
                data_arms = data_arms.join("\n"),
            )
        }
    };
    let name = match input {
        Input::NamedStruct { name, .. }
        | Input::TupleStruct { name, .. }
        | Input::UnitStruct { name }
        | Input::Enum { name, .. } => name,
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n {body}\n }}\n}}"
    )
}
