//! Offline stand-in for `criterion`.
//!
//! The build environment has no registry access, so this vendored crate
//! implements the subset of the criterion API the workspace's benches
//! use — `Criterion`, `BenchmarkGroup`, `BenchmarkId`, `Bencher::iter`,
//! `criterion_group!`, `criterion_main!` — as a straightforward
//! wall-clock harness: per benchmark it warms up for `warm_up_time`,
//! takes `sample_size` timed samples of an adaptively chosen batch size,
//! and prints mean/min/max per iteration. No statistics beyond that, no
//! HTML reports; enough to compare strategies by factors, which is what
//! the benches exist to show.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Top-level benchmark harness configuration and entry point.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Total measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Warm-up duration per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group: {name}");
        BenchmarkGroup {
            criterion: self,
            group: name,
        }
    }

    /// Run a single benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(self, &id.into_benchmark_id().label, &mut f);
        self
    }

    /// Run a single benchmark with an explicit input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(self, &id.into_benchmark_id().label, &mut |b| f(b, input));
        self
    }
}

/// A named group sharing the parent harness configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    group: String,
}

impl BenchmarkGroup<'_> {
    /// Override the sample count for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.criterion.sample_size = n;
        self
    }

    /// Override the measurement budget for benchmarks in this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measurement_time = d;
        self
    }

    /// Override the warm-up duration for benchmarks in this group.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.warm_up_time = d;
        self
    }

    /// Run a benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.group, id.into_benchmark_id().label);
        run_one(self.criterion, &label, &mut f);
        self
    }

    /// Run a benchmark with an explicit input within the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.group, id.into_benchmark_id().label);
        run_one(self.criterion, &label, &mut |b| f(b, input));
        self
    }

    /// Finish the group (printing is incremental; this is a no-op kept
    /// for API compatibility).
    pub fn finish(self) {}
}

/// Identifier of one benchmark, optionally parameterized.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter`, as in criterion.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Parameter-only id (criterion's `from_parameter`).
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Conversion accepted wherever criterion takes a benchmark id.
pub trait IntoBenchmarkId {
    /// Convert into a [`BenchmarkId`].
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            label: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { label: self }
    }
}

/// Passed to the benchmark closure; [`Bencher::iter`] runs the routine.
pub struct Bencher {
    /// Iterations to run in the current call (set by the harness).
    iters: u64,
    /// Measured elapsed time for those iterations (read by the harness).
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` for the harness-chosen number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std_black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn time_batch<F: FnMut(&mut Bencher)>(f: &mut F, iters: u64) -> Duration {
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    b.elapsed
}

fn run_one<F: FnMut(&mut Bencher)>(config: &Criterion, label: &str, f: &mut F) {
    // Warm-up, and a first estimate of the per-iteration cost.
    let warm_start = Instant::now();
    let mut warm_iters: u64 = 0;
    let mut batch: u64 = 1;
    while warm_start.elapsed() < config.warm_up_time {
        time_batch(f, batch);
        warm_iters += batch;
        batch = (batch * 2).min(1 << 20);
    }
    let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
    // Choose a batch size so all samples fit the measurement budget.
    let budget = config.measurement_time.as_secs_f64();
    let total_iters = (budget / per_iter.max(1e-9)) as u64;
    let sample_iters = (total_iters / config.sample_size as u64).clamp(1, 1 << 24);

    let mut samples: Vec<f64> = Vec::with_capacity(config.sample_size);
    for _ in 0..config.sample_size {
        let elapsed = time_batch(f, sample_iters);
        samples.push(elapsed.as_secs_f64() / sample_iters as f64);
    }
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = samples.iter().cloned().fold(0.0f64, f64::max);
    println!(
        "{label:<48} time: [{} {} {}]  ({} samples × {} iters)",
        fmt_time(min),
        fmt_time(mean),
        fmt_time(max),
        samples.len(),
        sample_iters,
    );
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{:.2} s", secs)
    }
}

/// Define a benchmark group: both the `name/config/targets` form and the
/// positional `(name, target, …)` form are supported.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Define `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(20));
        let mut runs = 0u64;
        c.bench_function("smoke", |b| b.iter(|| runs = runs.wrapping_add(1)));
        assert!(runs > 0);
        let mut g = c.benchmark_group("grp");
        g.bench_with_input(BenchmarkId::new("param", 7), &7u64, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        g.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("naive", 4).label, "naive/4");
        assert_eq!(BenchmarkId::from_parameter("x").label, "x");
    }
}
