//! Stub library for the workspace-root package.
//!
//! The repo-level `tests/` and `examples/` directories attach to this
//! package; the actual code lives in the `crates/` members (start at
//! `crates/core`, the `cqd2` facade).

pub use cqd2;
