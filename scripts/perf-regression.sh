#!/usr/bin/env bash
# Perf-regression harness: run every speed-gated bench, print a
# pass/fail summary, and emit a machine-readable BENCH_results.json.
#
# Each gated bench asserts its own floor (the gate) and exits nonzero
# when a kernel or serving path regresses past it:
#
#   relation_ops             columnar join ≥ 2× row store;
#                            chunked semijoin filter ≥ 1.3× reference
#   engine_prepared          prepared re-execution ≥ 2× per-call serve
#   engine_catalog           owned epoch-pinned API within 10% of the
#                            borrowed baseline
#   engine_overlay           overlay warm runs ≥ 2× clone-based
#                            execution (cq tree and engine PreparedQuery)
#   engine_metrics_overhead  per-query instrumentation within 5%
#   engine_snapshot          .cqds cold start ≥ 2× text re-parse +
#                            re-stats on a ≥ 1e5-row database
#   engine_delta             small-delta publish ≥ 5× text full reload
#                            on a ≥ 1e5-row database; warm prepared
#                            re-execution after a delta ≥ 2× re-prepare
#
# Gated benches print one machine-parsable line per gate:
#   GATE <name> ratio=<measured> floor=<bound> cmp=<ge|le> status=PASS
# This script collects those lines (plus each bench's exit status) into
# BENCH_results.json next to the repo root:
#   {"gates": [{"bench": ..., "gate": ..., "ratio": ..., "floor": ...,
#               "cmp": ..., "pass": true|false}, ...], "all_passed": ...}
# A bench that dies before printing its GATE line (assert tripped,
# panic, build failure) still gets a JSON entry with ratio null and
# pass false — failures are never silently absent from the report.
#
# Usage: scripts/perf-regression.sh [bench ...]   (default: all gates)

set -uo pipefail
cd "$(dirname "$0")/.."

GATES=(relation_ops engine_prepared engine_catalog engine_overlay engine_metrics_overhead engine_snapshot engine_delta)
if [ "$#" -gt 0 ]; then
  GATES=("$@")
fi

LOG_DIR="${TMPDIR:-/tmp}/perf-regression"
JSON_OUT="BENCH_results.json"
mkdir -p "$LOG_DIR"

# Compile everything up front so build time never pollutes a measurement
# and a compile error reads as a build failure, not a perf regression.
echo "== building bench targets =="
if ! cargo bench --no-run 2>&1 | tail -3; then
  echo "FAIL: bench targets do not build" >&2
  echo '{"gates": [], "all_passed": false, "error": "bench targets do not build"}' >"$JSON_OUT"
  exit 1
fi

declare -a RESULTS=()
declare -a JSON_GATES=()
FAILED=0
for bench in "${GATES[@]}"; do
  log="$LOG_DIR/$bench.log"
  echo
  echo "== $bench =="
  if cargo bench -p cqd2-bench --bench "$bench" >"$log" 2>&1; then
    bench_ok=1
    RESULTS+=("PASS  $bench")
    # Surface the bench's own headline numbers (its '===' banner block).
    sed -n '/^===/,/^group:/p' "$log" | sed '$d'
  else
    bench_ok=0
    RESULTS+=("FAIL  $bench")
    FAILED=1
    echo "--- last 30 lines of $log ---"
    tail -30 "$log"
  fi
  # Collect the bench's GATE lines into JSON entries. The bench's exit
  # status wins: a PASS line from a bench that later died still counts
  # as a failure.
  found_gate=0
  while IFS= read -r line; do
    found_gate=1
    gate=$(printf '%s' "$line" | awk '{print $2}')
    ratio=$(printf '%s' "$line" | sed -n 's/.*ratio=\([0-9.]*\).*/\1/p')
    floor=$(printf '%s' "$line" | sed -n 's/.*floor=\([0-9.]*\).*/\1/p')
    cmp=$(printf '%s' "$line" | sed -n 's/.*cmp=\([a-z]*\).*/\1/p')
    if [ "$bench_ok" -eq 1 ]; then pass=true; else pass=false; fi
    JSON_GATES+=("{\"bench\": \"$bench\", \"gate\": \"$gate\", \"ratio\": ${ratio:-null}, \"floor\": ${floor:-null}, \"cmp\": \"${cmp:-ge}\", \"pass\": $pass}")
  done < <(grep '^GATE ' "$log" || true)
  if [ "$found_gate" -eq 0 ]; then
    # No GATE line at all — the bench died early (or predates the
    # format). Record the bench itself so the report stays complete.
    if [ "$bench_ok" -eq 1 ]; then pass=true; else pass=false; fi
    JSON_GATES+=("{\"bench\": \"$bench\", \"gate\": \"$bench\", \"ratio\": null, \"floor\": null, \"cmp\": \"ge\", \"pass\": $pass}")
  fi
done

if [ "$FAILED" -ne 0 ]; then all_passed=false; else all_passed=true; fi
{
  echo '{"gates": ['
  sep=""
  for g in "${JSON_GATES[@]}"; do
    printf '%s  %s' "$sep" "$g"
    sep=$',\n'
  done
  echo
  echo "], \"all_passed\": $all_passed}"
} >"$JSON_OUT"

echo
echo "== perf-regression summary =="
for line in "${RESULTS[@]}"; do
  echo "  $line"
done
echo "machine-readable report: $JSON_OUT"
if [ "$FAILED" -ne 0 ]; then
  echo "perf gates FAILED (full logs in $LOG_DIR)" >&2
  exit 1
fi
echo "all perf gates passed"
