#!/usr/bin/env bash
# Perf-regression harness: run every speed-gated bench and print a
# pass/fail summary.
#
# Each gated bench asserts its own floor (the gate) and exits nonzero
# when a kernel or serving path regresses past it:
#
#   relation_ops             columnar join ≥ 2× row store;
#                            chunked semijoin filter ≥ 1.3× reference
#   engine_prepared          prepared re-execution ≥ 2× per-call serve
#   engine_catalog           owned epoch-pinned API within 10% of the
#                            borrowed baseline
#   engine_overlay           overlay warm runs ≥ 2× clone-based
#                            execution (cq tree and engine PreparedQuery)
#   engine_metrics_overhead  per-query instrumentation within 5%
#   engine_snapshot          .cqds cold start ≥ 2× text re-parse +
#                            re-stats on a ≥ 1e5-row database
#
# This script just orchestrates: build once, run each gate, summarize.
# Usage: scripts/perf-regression.sh [bench ...]   (default: all gates)

set -uo pipefail
cd "$(dirname "$0")/.."

GATES=(relation_ops engine_prepared engine_catalog engine_overlay engine_metrics_overhead engine_snapshot)
if [ "$#" -gt 0 ]; then
  GATES=("$@")
fi

LOG_DIR="${TMPDIR:-/tmp}/perf-regression"
mkdir -p "$LOG_DIR"

# Compile everything up front so build time never pollutes a measurement
# and a compile error reads as a build failure, not a perf regression.
echo "== building bench targets =="
if ! cargo bench --no-run 2>&1 | tail -3; then
  echo "FAIL: bench targets do not build" >&2
  exit 1
fi

declare -a RESULTS=()
FAILED=0
for bench in "${GATES[@]}"; do
  log="$LOG_DIR/$bench.log"
  echo
  echo "== $bench =="
  if cargo bench -p cqd2-bench --bench "$bench" >"$log" 2>&1; then
    RESULTS+=("PASS  $bench")
    # Surface the bench's own headline numbers (its '===' banner block).
    sed -n '/^===/,/^group:/p' "$log" | sed '$d'
  else
    RESULTS+=("FAIL  $bench")
    FAILED=1
    echo "--- last 30 lines of $log ---"
    tail -30 "$log"
  fi
done

echo
echo "== perf-regression summary =="
for line in "${RESULTS[@]}"; do
  echo "  $line"
done
if [ "$FAILED" -ne 0 ]; then
  echo "perf gates FAILED (full logs in $LOG_DIR)" >&2
  exit 1
fi
echo "all perf gates passed"
