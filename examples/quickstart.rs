//! Quickstart: build a conjunctive query and a database, inspect the
//! query's hypergraph structure, and evaluate it with the GHD-guided
//! engine.
//!
//! Run with: `cargo run --release --example quickstart`

use cqd2::cq::{ConjunctiveQuery, Database};
use cqd2::decomp::widths::{ghw_decomposition, ghw_exact};

fn main() {
    // A degree-2 cyclic query: R(x,y) ∧ S(y,z) ∧ T(z,w) ∧ U(w,x).
    let q = ConjunctiveQuery::parse(&[
        ("R", &["?x", "?y"]),
        ("S", &["?y", "?z"]),
        ("T", &["?z", "?w"]),
        ("U", &["?w", "?x"]),
    ]);
    println!("query:      {}", q.display());

    let h = q.hypergraph();
    println!(
        "hypergraph: |V| = {}, |E| = {}, degree = {}, rank = {}",
        h.num_vertices(),
        h.num_edges(),
        h.max_degree(),
        h.rank()
    );
    println!("ghw:        {:?}", ghw_exact(&h));

    // A database with one 4-cycle and some noise.
    let mut db = Database::new();
    db.insert_all("R", &[vec![1, 2], vec![5, 6], vec![8, 9]]);
    db.insert_all("S", &[vec![2, 3], vec![6, 7]]);
    db.insert_all("T", &[vec![3, 4], vec![7, 5]]);
    db.insert_all("U", &[vec![4, 1], vec![9, 8]]);

    let report = cqd2::analyze(&h);
    println!(
        "analysis:   ghw ∈ [{}, {}], jigsaw extracted: {:?}",
        report.ghw_lower, report.ghw_upper, report.jigsaw
    );

    // Evaluate three ways and cross-check.
    let naive = cqd2::cq::eval::bcq_naive(&q, &db);
    let ghd = ghw_decomposition(&h).expect("small query");
    let via_ghd = cqd2::cq::eval::bcq_via_ghd(&q, &db, &ghd).expect("valid GHD");
    let count = cqd2::count_answers(&q, &db);
    println!("BCQ naive:  {naive}");
    println!(
        "BCQ GHD:    {via_ghd} (width-{} decomposition)",
        ghd.width()
    );
    println!("#CQ:        {count}");
    assert_eq!(naive, via_ghd);

    // Semantic width: add a redundant atom and watch the core shrink.
    let q2 = ConjunctiveQuery::parse(&[
        ("R", &["?x", "?y"]),
        ("S", &["?y", "?z"]),
        ("T", &["?z", "?w"]),
        ("U", &["?w", "?x"]),
        ("R", &["?a", "?b"]), // redundant: folds onto R(x,y)
    ]);
    let core = cqd2::cq::hom::core_of(&q2);
    println!(
        "core:       {} atoms -> {} atoms; semantic ghw = {:?}",
        q2.atoms.len(),
        core.atoms.len(),
        cqd2::cq::hom::semantic_ghw(&q2)
    );
}
