//! Serving demo: sessions and prepared queries through the
//! `cqd2-engine` planner + plan cache, with plan provenance and
//! streaming enumeration.
//!
//! ```sh
//! cargo run --release --example engine_serving
//! ```

use cqd2::cq::generate::{canonical_query, planted_database};
use cqd2::cq::ConjunctiveQuery;
use cqd2::engine::{Engine, EngineConfig, Workload};
use cqd2::hypergraph::generators::{hyperchain, hypercycle};
use cqd2::jigsaw::jigsaw;

fn main() {
    // Three structure classes a production workload might mix:
    //   - an acyclic chain (ghw 1 → width-1 Yannakakis),
    //   - a cycle (ghw 2 → GHD route),
    //   - a 3×3 jigsaw (the paper's hard regime → Theorem 4.7
    //     certificate; evaluation still uses the best GHD found).
    let shapes: Vec<(&str, ConjunctiveQuery)> = vec![
        ("chain", canonical_query(&hyperchain(5, 3))),
        ("cycle", canonical_query(&hypercycle(6, 2))),
        ("jigsaw", canonical_query(&jigsaw(3, 3))),
    ];

    let engine = Engine::new(EngineConfig::default());
    println!(
        "{:<10} {:>4} {:>10} {:<16} {:>6} {:>12} {:>12}",
        "request", "run", "answer", "strategy", "cache", "plan", "exec"
    );
    for (round, (tag, q)) in shapes.iter().enumerate() {
        let db = planted_database(q, 6, 12, round as u64 + 7);
        // One session per database: statistics are snapshotted here,
        // once, and shared by everything prepared on the session.
        let session = engine.session(&db);
        // One prepared query per query: structure analysis + plan are
        // resolved here, once (through the isomorphism-keyed cache).
        let prepared = session
            .prepare(q)
            .expect("planning cannot fail for a well-formed query");
        // Re-execution is now planning-free — run the same handle
        // against all three workloads.
        for (run, workload) in [
            Workload::Boolean,
            Workload::Count,
            Workload::Enumerate { limit: Some(3) },
        ]
        .into_iter()
        .enumerate()
        {
            let resp = prepared.run(workload);
            let answer = match &resp.answer {
                cqd2::engine::Answer::Bool(b) => b.to_string(),
                cqd2::engine::Answer::Count(n) => n.to_string(),
                cqd2::engine::Answer::Tuples(t) => format!("{} tuples", t.len()),
            };
            println!(
                "{:<10} {:>4} {:>10} {:<16} {:>6} {:>12} {:>12}",
                format!("{tag}#{round}"),
                run,
                answer,
                resp.provenance.planned.plan.strategy(),
                if prepared.cache_hit() { "hit" } else { "miss" },
                // Prepared runs do no planning; the cost was paid once,
                // at prepare time.
                format!("{:?}", resp.provenance.planning),
                format!("{:?}", resp.provenance.execution),
            );
        }
        // Streaming enumeration: answers arrive on demand from the
        // semijoin-reduced bag tree — no materialized result set.
        let first_two: Vec<Vec<u64>> = prepared.cursor(None).take(2).collect();
        println!(
            "           └ streamed {} answer(s) via cursor, e.g. {:?}",
            first_two.len(),
            first_two.first()
        );
    }

    let stats = engine.cache_stats();
    println!(
        "\nplan cache: {} hits, {} misses, {} structures resident",
        stats.hits, stats.misses, stats.entries
    );
    println!("\nexplanation of the jigsaw plan:");
    let (planned, _, _) = engine.plan(&shapes[2].1, Workload::Boolean);
    for line in planned.explain().lines() {
        println!("  {line}");
    }
}
