//! Serving demo: the owned `Catalog`/`Session` API — epoch-pinned
//! prepared queries through the `cqd2-engine` planner + plan cache,
//! with plan provenance, streaming enumeration, and a hot reload that
//! never disturbs in-flight handles.
//!
//! ```sh
//! cargo run --release --example engine_serving
//! ```

use cqd2::cq::generate::{canonical_query, planted_database};
use cqd2::cq::ConjunctiveQuery;
use cqd2::engine::textio::render_database;
use cqd2::engine::{Catalog, Engine, EngineConfig, Workload};
use cqd2::hypergraph::generators::{hyperchain, hypercycle};
use cqd2::jigsaw::jigsaw;

fn main() {
    // Three structure classes a production workload might mix:
    //   - an acyclic chain (ghw 1 → width-1 Yannakakis),
    //   - a cycle (ghw 2 → GHD route),
    //   - a 3×3 jigsaw (the paper's hard regime → Theorem 4.7
    //     certificate; evaluation still uses the best GHD found).
    let shapes: Vec<(&str, ConjunctiveQuery)> = vec![
        ("chain", canonical_query(&hyperchain(5, 3))),
        ("cycle", canonical_query(&hypercycle(6, 2))),
        ("jigsaw", canonical_query(&jigsaw(3, 3))),
    ];

    let engine = Engine::new(EngineConfig::default());
    // One catalog holds every named database; publishing computes the
    // statistics snapshot once, and every session pins the published
    // `Arc<DatabaseSnapshot>` — no copies, no lifetimes.
    let catalog = Catalog::new();
    for (round, (tag, q)) in shapes.iter().enumerate() {
        let db = planted_database(q, 6, 12, round as u64 + 7);
        catalog.publish(*tag, db).expect("shape names are distinct");
    }

    println!(
        "{:<10} {:>4} {:>10} {:<16} {:>6} {:>12} {:>12}",
        "request", "run", "answer", "strategy", "cache", "plan", "exec"
    );
    for (round, (tag, q)) in shapes.iter().enumerate() {
        // One session per database: it pins the published snapshot (and
        // its epoch) for as long as the handle lives.
        let session = engine.session_in(&catalog, tag).expect("published above");
        // One prepared query per query: structure analysis + plan are
        // resolved here, once (through the isomorphism-keyed cache).
        let prepared = session
            .prepare(q)
            .expect("planning cannot fail for a well-formed query");
        // Re-execution is now planning-free — run the same handle
        // against all three workloads.
        for (run, workload) in [
            Workload::Boolean,
            Workload::Count,
            Workload::Enumerate { limit: Some(3) },
        ]
        .into_iter()
        .enumerate()
        {
            let resp = prepared.run(workload);
            let answer = match &resp.answer {
                cqd2::engine::Answer::Bool(b) => b.to_string(),
                cqd2::engine::Answer::Count(n) => n.to_string(),
                cqd2::engine::Answer::Tuples(t) => format!("{} tuples", t.len()),
            };
            println!(
                "{:<10} {:>4} {:>10} {:<16} {:>6} {:>12} {:>12}",
                format!("{tag}#{round}"),
                run,
                answer,
                resp.provenance.planned.plan.strategy(),
                if prepared.cache_hit() { "hit" } else { "miss" },
                // Prepared runs do no planning; the cost was paid once,
                // at prepare time.
                format!("{:?}", resp.provenance.planning),
                format!("{:?}", resp.provenance.execution),
            );
        }
        // Streaming enumeration: answers arrive on demand from the
        // semijoin-reduced bag tree — no materialized result set.
        let first_two: Vec<Vec<u64>> = prepared.cursor(None).take(2).collect();
        println!(
            "           └ streamed {} answer(s) via cursor, e.g. {:?}",
            first_two.len(),
            first_two.first()
        );
    }

    // Hot reload: swap the chain database for a larger instance while a
    // prepared handle is still alive. The old handle keeps its pinned
    // epoch-0 snapshot; only sessions opened after the swap see the new
    // data — amortization and consistency at once.
    let (tag, q) = &shapes[0];
    let old_session = engine.session_in(&catalog, tag).expect("published");
    let old_prepared = old_session.prepare(q).expect("prepare");
    let old_count = old_prepared.run(Workload::Count).answer.as_count().unwrap();
    let bigger = planted_database(q, 9, 40, 99);
    let reloaded = catalog
        .swap_str(tag, &render_database(&bigger))
        .expect("swap");
    let new_session = engine.session_in(&catalog, tag).expect("published");
    let new_count = new_session
        .prepare(q)
        .expect("prepare")
        .run(Workload::Count)
        .answer
        .as_count()
        .unwrap();
    println!(
        "\nhot reload of `{tag}`: epoch {} → {} facts; pinned handle still counts {}, \
         fresh session counts {}",
        reloaded.epoch(),
        reloaded.db().size(),
        old_prepared.run(Workload::Count).answer.as_count().unwrap(),
        new_count,
    );
    assert_eq!(
        old_prepared.run(Workload::Count).answer.as_count(),
        Some(old_count),
        "pinned handles never see a reload"
    );

    let stats = engine.cache_stats();
    println!(
        "\nplan cache: {} hits, {} misses, {} structures resident",
        stats.hits, stats.misses, stats.entries
    );
    println!("\nexplanation of the jigsaw plan:");
    let (planned, _, _) = engine.plan(&shapes[2].1, Workload::Boolean);
    for line in planned.explain().lines() {
        println!("  {line}");
    }
}
