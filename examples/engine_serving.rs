//! Serving demo: a mixed batch of queries through the `cqd2-engine`
//! planner + plan cache + batch executor, with plan provenance.
//!
//! ```sh
//! cargo run --release --example engine_serving
//! ```

use cqd2::cq::generate::{canonical_query, planted_database, random_database};
use cqd2::cq::{ConjunctiveQuery, Database};
use cqd2::engine::{Engine, EngineConfig, Request, Workload};
use cqd2::hypergraph::generators::{hyperchain, hypercycle};
use cqd2::jigsaw::jigsaw;

fn main() {
    // Three structure classes a production workload might mix:
    //   - an acyclic chain (ghw 1 → width-1 Yannakakis),
    //   - a cycle (ghw 2 → GHD route),
    //   - a 3×3 jigsaw (the paper's hard regime → Theorem 4.7
    //     certificate; evaluation still uses the best GHD found).
    let shapes: Vec<(&str, ConjunctiveQuery)> = vec![
        ("chain", canonical_query(&hyperchain(5, 3))),
        ("cycle", canonical_query(&hypercycle(6, 2))),
        ("jigsaw", canonical_query(&jigsaw(3, 3))),
    ];
    let mut queries: Vec<(String, ConjunctiveQuery, Database, Workload)> = Vec::new();
    for round in 0..3u64 {
        for (tag, q) in &shapes {
            let db = if round == 0 {
                planted_database(q, 6, 12, round + 7)
            } else {
                random_database(q, 6, 12, round + 7)
            };
            let workload = if round == 2 {
                Workload::Count
            } else {
                Workload::Boolean
            };
            queries.push((format!("{tag}#{round}"), q.clone(), db, workload));
        }
    }

    let engine = Engine::new(EngineConfig::default());
    let requests: Vec<Request<'_>> = queries
        .iter()
        .map(|(_, query, db, workload)| Request {
            query,
            db,
            workload: *workload,
        })
        .collect();
    let responses = engine.execute_batch(&requests);

    println!(
        "{:<10} {:>8} {:<16} {:>6} {:>12} {:>12}",
        "request", "answer", "strategy", "cache", "plan", "exec"
    );
    for ((name, _, _, _), resp) in queries.iter().zip(&responses) {
        let answer = match resp.answer {
            cqd2::engine::Answer::Bool(b) => b.to_string(),
            cqd2::engine::Answer::Count(n) => n.to_string(),
        };
        println!(
            "{:<10} {:>8} {:<16} {:>6} {:>12} {:>12}",
            name,
            answer,
            resp.provenance.planned.plan.strategy(),
            if resp.provenance.cache_hit {
                "hit"
            } else {
                "miss"
            },
            format!("{:?}", resp.provenance.planning),
            format!("{:?}", resp.provenance.execution),
        );
    }

    let stats = engine.cache_stats();
    println!(
        "\nplan cache: {} hits, {} misses, {} structures resident",
        stats.hits, stats.misses, stats.entries
    );
    println!("\nexplanation of the jigsaw plan:");
    let (planned, _, _) = engine.plan(&shapes[2].1, Workload::Boolean);
    for line in planned.explain().lines() {
        println!("  {line}");
    }
}
