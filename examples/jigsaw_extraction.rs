//! Figure 2 / Theorem 4.7 demo: take a degree-2 hypergraph, run the
//! excluded-grid pipeline, and print the dilution sequence down to the
//! jigsaw.
//!
//! Run with: `cargo run --release --example jigsaw_extraction`

use cqd2::dilution::decide::verify_dilution;
use cqd2::jigsaw::extract::{decorated_jigsaw_dual, figure2_hypergraph};
use cqd2::jigsaw::{extract_jigsaw, jigsaw};

fn main() {
    // The Figure 2 hypergraph: a decorated degree-2 hypergraph hiding the
    // 3×2 jigsaw.
    let h = figure2_hypergraph();
    println!("Figure 2 hypergraph:");
    println!("{h:?}");

    let extraction = extract_jigsaw(&h, 3, 3_000_000)
        .expect("degree-2 input")
        .expect("a jigsaw is hidden inside");
    println!(
        "extracted the {0}×{0} jigsaw with a {1}-operation dilution sequence:",
        extraction.n,
        extraction.sequence.len()
    );
    for (i, op) in extraction.sequence.ops.iter().enumerate() {
        println!("  step {:>2}: {op:?}", i + 1);
    }
    verify_dilution(
        &h,
        &jigsaw(extraction.n, extraction.n),
        &extraction.sequence,
    )
    .expect("sequence verified");
    println!("verified: result isomorphic to the jigsaw, Lemma 3.2 invariants hold.\n");

    // The f(n) shape of Theorem 4.7: larger hidden grids -> larger
    // extracted jigsaws (and hence provably larger ghw, Lemma 3.2(3)).
    println!("decorated duals: hidden grid vs extracted jigsaw");
    println!("  hidden | extracted n | dilution ops");
    for n in 2..=4 {
        let h = decorated_jigsaw_dual(n, n, 1, 2);
        let e = extract_jigsaw(&h, n, 3_000_000).unwrap();
        match e {
            Some(e) => println!("   {n}x{n}   |      {}      | {}", e.n, e.sequence.len()),
            None => println!("   {n}x{n}   |      -      | -"),
        }
    }
}
