//! Theorem 3.4 / 4.15 demo: reduce a BCQ instance over a diluted
//! hypergraph back to the original hypergraph, preserving the answers
//! parsimoniously, and report the database blowup.
//!
//! Run with: `cargo run --release --example fpt_reduction`

use cqd2::cq::generate::planted_database;
use cqd2::cq::Database;
use cqd2::dilution::decide::decide_dilution_to_graph_dual;
use cqd2::hypergraph::generators::grid_graph;
use cqd2::jigsaw::jigsaw;
use cqd2::reduction::{reduce_along, verify_reduction, Instance};

fn main() {
    // Host: the 3×3 jigsaw. Target: the 2×2 jigsaw (a dilution of it —
    // found by the Lemma 4.4 duality route).
    let host = jigsaw(3, 3);
    let seq = decide_dilution_to_graph_dual(&host, &grid_graph(2, 2), 3_000_000)
        .expect("degree-2 host")
        .sequence()
        .expect("J_2 is a dilution of J_3");
    println!(
        "dilution sequence J(3,3) → J(2,2): {} operations",
        seq.len()
    );

    // An instance over the small hypergraph: the canonical query of J_2
    // with a planted database.
    let target = seq.apply(&host).expect("sequence applies");
    let proto = Instance::canonical(&target, Database::new(), "Q");
    let db = planted_database(&proto.query, 6, 30, 42);
    let instance = Instance::canonical(&target, db, "Q");
    println!(
        "original instance: {} atoms, ‖D‖ = {} cells, answers = {}",
        instance.query.atoms.len(),
        instance.db_weight(),
        cqd2::cq::eval::count_naive(&instance.query, &instance.db),
    );

    // Reduce it to an instance over J_3 (walking the sequence in reverse).
    let report = reduce_along(&host, &seq, &instance).expect("reduction runs");
    println!(
        "reduced instance:  {} atoms, ‖D_p‖ = {} cells, answers = {}",
        report.instance.query.atoms.len(),
        report.instance.db_weight(),
        cqd2::cq::eval::count_naive(&report.instance.query, &report.instance.db),
    );
    println!("per-step weights:  {:?}", report.step_weights);

    verify_reduction(&instance, &report).expect("Theorem 3.4/4.15 verified");
    println!("verified: projection identity and parsimony hold.");
}
