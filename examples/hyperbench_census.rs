//! Table 1: the degree-2 ghw census over the (synthetic) HyperBench-like
//! corpus. Point it at a directory of real HyperBench `.hg` files to run
//! the same census on the genuine benchmark:
//!
//! `cargo run --release --example hyperbench_census [-- /path/to/hg-dir]`

use cqd2::hyperbench::census::census;
use cqd2::hyperbench::corpus::{generate_corpus, CorpusEntry, Provenance};
use cqd2::hyperbench::io::load_directory;

fn main() {
    let corpus: Vec<CorpusEntry> = match std::env::args().nth(1) {
        Some(dir) => {
            println!("loading real HyperBench data from {dir} …");
            load_directory(std::path::Path::new(&dir))
                .expect("readable .hg directory")
                .into_iter()
                .map(|(name, hypergraph)| CorpusEntry {
                    name,
                    provenance: Provenance::Application,
                    hypergraph,
                })
                .collect()
        }
        None => {
            println!("using the synthetic HyperBench-like corpus (DESIGN.md §5)");
            generate_corpus()
        }
    };
    let report = census(&corpus);
    println!("\n{}", report.render());
    println!("paper (Table 1):  k=1: 649, k=2: 575, k=3: 506, k=4: 452, k=5: 389");
}
