//! #CQ demo (Prop. 4.14 / Theorem 4.16): counting answers of full
//! degree-2 CQs — junction-tree DP over a GHD vs naive enumeration.
//!
//! Run with: `cargo run --release --example counting`

use cqd2::cq::eval::{count_naive, count_via_ghd};
use cqd2::cq::generate::{canonical_query, planted_database};
use cqd2::decomp::widths::ghw_decomposition;
use cqd2::hypergraph::generators::hypercycle;
use std::time::Instant;

fn main() {
    println!("counting answers of degree-2 cycle queries (rank 2)");
    println!("  edges | answers | naive (ms) | GHD DP (ms) | ghw");
    for k in [4usize, 6, 8] {
        let h = hypercycle(k, 2);
        let q = canonical_query(&h);
        let db = planted_database(&q, 8, 60, k as u64);
        let ghd = ghw_decomposition(&h).expect("small degree-2 hypergraph");

        let t0 = Instant::now();
        let naive = count_naive(&q, &db);
        let t_naive = t0.elapsed();

        let t1 = Instant::now();
        let via = count_via_ghd(&q, &db, &ghd).expect("valid GHD");
        let t_ghd = t1.elapsed();

        assert_eq!(naive, via, "the two counters must agree");
        println!(
            "  {k:>5} | {naive:>7} | {:>10.2} | {:>11.2} | {}",
            t_naive.as_secs_f64() * 1e3,
            t_ghd.as_secs_f64() * 1e3,
            ghd.width()
        );
    }
    println!("\nboth counters agree on every instance (Theorem 4.16's FP side).");
}
