//! End-to-end loopback tests of the `cqd2-serve` socket front-end:
//! concurrent clients, backpressure rejection, malformed frames, and
//! graceful shutdown, all against a real TCP listener on 127.0.0.1.

use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use cqd2::cq::eval::{bcq_naive, count_naive, enumerate_naive};
use cqd2::cq::generate::{canonical_query, planted_database};
use cqd2::engine::server::client::Client;
use cqd2::engine::server::frame::{read_frame, write_frame, FrameType};
use cqd2::engine::server::wire::{ErrorCode, WireError};
use cqd2::engine::server::{DbRegistry, Server, ServerConfig, ServerHandle, ServerStats};
use cqd2::engine::textio::{self, parse_workload};
use cqd2::engine::{Engine, Workload};
use cqd2::hypergraph::generators::{hyperchain, hypercycle};

/// Run `f` against a live server, then shut the server down and return
/// `f`'s result plus the server's final stats.
fn with_server<R>(
    config: ServerConfig,
    registry: &DbRegistry,
    f: impl FnOnce(SocketAddr, &ServerHandle) -> R,
) -> (R, ServerStats) {
    let engine = Engine::default();
    let server = Server::bind("127.0.0.1:0", config).expect("bind loopback");
    let addr = server.local_addr().expect("local addr");
    let handle = server.handle();
    let mut outcome = None;
    let mut stats = None;
    std::thread::scope(|s| {
        let run = s.spawn(|| server.run(&engine, registry).expect("server run"));
        outcome = Some(f(addr, &handle));
        handle.shutdown();
        stats = Some(run.join().expect("server thread"));
    });
    (outcome.unwrap(), stats.unwrap())
}

/// A fast config for tests: snappy polling, small queue optional via
/// override.
fn test_config() -> ServerConfig {
    ServerConfig {
        workers: 2,
        poll_interval: Duration::from_millis(5),
        drain_timeout: Duration::from_secs(10),
        ..ServerConfig::default()
    }
}

const FACTS: &str = "R(1, 2)\nR(3, 3)\nS(2, 3)\nS(2, 4)\nS(3, 5)\n";

fn small_registry() -> DbRegistry {
    let mut reg = DbRegistry::new();
    reg.load_str("main", FACTS).expect("load main");
    reg.load_str("empty", "T(0)\n").expect("load empty");
    reg
}

#[test]
fn eight_concurrent_clients_get_consistent_answers() {
    // One workload text is the shared source of truth: the same facts
    // go to the server registry and into the local naive evaluation.
    let workload = format!("Q: R(?x, ?y), S(?y, ?z)\nQ: R(?a, ?a)\n{FACTS}");
    let parsed = parse_workload(&workload).expect("workload parses");
    let q_join = &parsed.queries[0];
    let q_loop = &parsed.queries[1];
    let expect_count = count_naive(q_join, &parsed.db);
    let expect_bool = bcq_naive(q_loop, &parsed.db);
    let expect_tuples = enumerate_naive(q_join, &parsed.db);

    let registry = small_registry();
    let clients = 8;
    let rounds = 5;
    let ((), stats) = with_server(test_config(), &registry, |addr, _| {
        std::thread::scope(|s| {
            for c in 0..clients {
                let expect_tuples = &expect_tuples;
                s.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    let bound = client.bind_db("main").expect("bind");
                    assert_eq!(bound.facts, 5);
                    for _ in 0..rounds {
                        // A mixed batch in one frame: count + boolean +
                        // enumerate over repeated structures.
                        let reply = client
                            .request(
                                "@count\nQ: R(?x, ?y), S(?y, ?z)\n\
                                 @boolean\nQ: R(?a, ?a)\n\
                                 @enumerate\nQ: R(?x, ?y), S(?y, ?z)\n",
                            )
                            .unwrap_or_else(|e| panic!("client {c}: {e}"));
                        assert_eq!(reply.results.len(), 3);
                        assert_eq!(reply.results[0].answer.as_count(), Some(expect_count));
                        assert_eq!(reply.results[1].answer.as_bool(), Some(expect_bool));
                        let mut tuples = reply.results[2]
                            .answer
                            .clone()
                            .into_tuples()
                            .expect("tuples");
                        tuples.sort_unstable();
                        assert_eq!(&tuples, expect_tuples);
                    }
                });
            }
        });
    });
    assert_eq!(stats.connections, clients);
    assert_eq!(stats.batches, clients * rounds);
    assert_eq!(stats.answered, clients * rounds * 3);
    assert_eq!(stats.rejected_overload, 0);
    // The per-database prepared cache is shared across connections:
    // each distinct (query text, workload-relevant) structure is
    // prepared a bounded number of times (concurrent first-misses can
    // duplicate work, never more than one prepare per execution), and
    // the steady state is all hits.
    assert!(
        stats.prepared_hits > stats.prepared_misses,
        "warm serving must be hit-dominated: {stats:?}"
    );
    assert_eq!(stats.prepared_hits + stats.prepared_misses, stats.answered);
}

#[test]
fn full_queue_rejects_with_typed_overloaded_frames() {
    // A deliberately expensive fixture so one worker stays busy while
    // the queue (capacity 1) fills: a rank-2 hypercycle with a planted
    // database large enough that counting takes real time.
    let q = canonical_query(&hypercycle(6, 2));
    let db = planted_database(&q, 40, 4000, 11);
    let mut registry = DbRegistry::new();
    registry
        .load_str("big", &textio::render_database(&db))
        .expect("load big");
    let query_line = format!("@count\nQ: {}\n", q.display());

    let config = ServerConfig {
        workers: 1,
        queue_capacity: 1,
        ..test_config()
    };
    let pipelined = 24;
    let ((done, overloaded), stats) = with_server(config, &registry, |addr, _| {
        let mut client = Client::connect(addr).expect("connect");
        client.bind_db("big").expect("bind");
        // Pipeline a burst of single-query batches without reading any
        // response: the first occupies the worker, the second sits in
        // the queue, the rest must be rejected immediately.
        for _ in 0..pipelined {
            client
                .send(FrameType::Query, query_line.as_bytes())
                .expect("send");
        }
        let mut done = 0u32;
        let mut overloaded = 0u32;
        let mut results = 0u32;
        // Each batch terminates in exactly one Done or one Error frame.
        while done + overloaded < pipelined {
            let frame = client.read().expect("read");
            match frame.frame_type {
                FrameType::Result => results += 1,
                FrameType::Done => done += 1,
                FrameType::Error => {
                    let err: WireError =
                        serde::json::from_str(frame.text().expect("utf8")).expect("json");
                    assert_eq!(err.code, ErrorCode::Overloaded, "{err:?}");
                    assert!(err.request.is_some());
                    overloaded += 1;
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(results, done, "every completed batch carried 1 result");
        (done, overloaded)
    });
    assert_eq!(done + overloaded, pipelined);
    assert!(
        overloaded >= 1,
        "a 1-slot queue under a {pipelined}-frame burst must reject: {stats:?}"
    );
    assert!(done >= 1, "accepted work still completes: {stats:?}");
    assert_eq!(stats.rejected_overload, u64::from(overloaded));
    // The server survived the burst and still answers.
    assert_eq!(stats.answered, u64::from(done));
}

#[test]
fn malformed_frames_get_typed_errors() {
    let registry = small_registry();
    let max_frame = 4096u32;
    let config = ServerConfig {
        max_frame_len: max_frame,
        ..test_config()
    };
    let ((), stats) = with_server(config, &registry, |addr, _| {
        let read_error = |stream: &mut TcpStream| -> WireError {
            let frame = read_frame(stream, 1 << 20).expect("error frame");
            assert_eq!(frame.frame_type, FrameType::Error);
            serde::json::from_str(std::str::from_utf8(&frame.payload).unwrap()).expect("json")
        };

        // Wrong version byte: typed Version error, then close.
        let mut s = TcpStream::connect(addr).unwrap();
        std::io::Write::write_all(&mut s, &[9, 1, 0, 0, 0, 0]).unwrap();
        let err = read_error(&mut s);
        assert_eq!(err.code, ErrorCode::Version, "{err:?}");
        assert!(read_frame(&mut s, 1 << 20).is_err(), "connection closed");

        // Unknown frame type.
        let mut s = TcpStream::connect(addr).unwrap();
        std::io::Write::write_all(&mut s, &[1, 0x55, 0, 0, 0, 0]).unwrap();
        let err = read_error(&mut s);
        assert_eq!(err.code, ErrorCode::BadFrame);

        // Oversized declared length.
        let mut s = TcpStream::connect(addr).unwrap();
        let mut header = vec![1u8, 0x02];
        header.extend_from_slice(&(max_frame + 1).to_be_bytes());
        std::io::Write::write_all(&mut s, &header).unwrap();
        let err = read_error(&mut s);
        assert_eq!(err.code, ErrorCode::BadFrame);
        assert!(err.message.contains("exceeds"), "{err:?}");

        // Server→client frame type sent by the client.
        let mut s = TcpStream::connect(addr).unwrap();
        write_frame(&mut s, FrameType::Done, b"{}").unwrap();
        let err = read_error(&mut s);
        assert_eq!(err.code, ErrorCode::BadFrame);

        // Request-level errors keep the connection alive.
        let mut client = Client::connect(addr).expect("connect");
        // Query before bind.
        let err = match client.request("Q: R(?x)\n") {
            Err(cqd2::engine::server::ServerError::Rejected(e)) => e,
            other => panic!("{other:?}"),
        };
        assert_eq!(err.code, ErrorCode::NotBound);
        // Unknown database.
        let err = match client.bind_db("nope") {
            Err(cqd2::engine::server::ServerError::Rejected(e)) => e,
            other => panic!("{other:?}"),
        };
        assert_eq!(err.code, ErrorCode::UnknownDb);
        assert!(err.message.contains("main"), "lists served dbs: {err:?}");
        // Bind failure did not unbind anything: now bind properly.
        client.bind_db("main").expect("bind");
        // Parse errors name their line and leave the connection usable.
        let err = match client.request("@count\nQ: R(?x\n") {
            Err(cqd2::engine::server::ServerError::Rejected(e)) => e,
            other => panic!("{other:?}"),
        };
        assert_eq!(err.code, ErrorCode::Parse);
        assert_eq!(err.line, Some(2), "{err:?}");
        // Facts are rejected in query batches.
        let err = match client.request("Q: R(?x)\nR(1)\n") {
            Err(cqd2::engine::server::ServerError::Rejected(e)) => e,
            other => panic!("{other:?}"),
        };
        assert_eq!(err.code, ErrorCode::Parse);
        // …and the connection still answers real queries.
        let result = client.query("R(?x, ?y)", Workload::Count).expect("query");
        assert_eq!(result.answer.as_count(), Some(2));
    });
    assert!(stats.protocol_errors >= 4, "{stats:?}");
    assert!(stats.parse_errors >= 2, "{stats:?}");
}

#[test]
fn graceful_shutdown_drains_and_notifies() {
    let registry = small_registry();
    let ((), stats) = with_server(test_config(), &registry, |addr, handle| {
        let mut client = Client::connect(addr).expect("connect");
        client.bind_db("main").expect("bind");
        let reply = client.request("@count\nQ: S(?x, ?y)\n").expect("request");
        assert_eq!(reply.results[0].answer.as_count(), Some(3));
        // Shut down while the client is idle-connected.
        handle.shutdown();
        assert!(handle.is_shutdown());
        // The connection is told, then closed: a ShuttingDown error
        // frame followed by EOF.
        let frame = client.read().expect("goodbye frame");
        assert_eq!(frame.frame_type, FrameType::Error);
        let err: WireError = serde::json::from_str(frame.text().expect("utf8")).expect("json");
        assert_eq!(err.code, ErrorCode::ShuttingDown, "{err:?}");
        assert!(client.read().is_err(), "EOF after goodbye");
    });
    // `with_server` already proves `run` returned (the scope joined);
    // the counters survived the trip.
    assert_eq!(stats.connections, 1);
    assert_eq!(stats.answered, 1);
}

#[test]
fn enumerate_limits_and_rebinding_work_over_the_wire() {
    let q = canonical_query(&hyperchain(3, 2));
    let db = planted_database(&q, 6, 24, 7);
    let expected = enumerate_naive(&q, &db);
    let mut registry = DbRegistry::new();
    registry
        .load_str("chain", &textio::render_database(&db))
        .expect("load chain");
    registry
        .load_str("tiny", "T(1)\nT(2)\n")
        .expect("load tiny");

    let ((), _) = with_server(test_config(), &registry, |addr, _| {
        let mut client = Client::connect(addr).expect("connect");
        client.bind_db("chain").expect("bind");
        // Full enumeration matches the naive evaluator.
        let all = client
            .query(&q.display(), Workload::Enumerate { limit: None })
            .expect("enumerate");
        let mut tuples = all.answer.into_tuples().expect("tuples");
        tuples.sort_unstable();
        assert_eq!(tuples, expected);
        // `@enumerate 0` is an explicit empty cap, not "no limit".
        let capped = client
            .query(&q.display(), Workload::Enumerate { limit: Some(0) })
            .expect("enumerate 0");
        assert_eq!(capped.answer.as_tuples().map(<[_]>::len), Some(0));
        // Rebinding switches databases mid-connection.
        client.bind_db("tiny").expect("rebind");
        let count = client.query("T(?x)", Workload::Count).expect("count");
        assert_eq!(count.answer.as_count(), Some(2));
    });
}
