//! End-to-end loopback tests of the `cqd2-serve` socket front-end:
//! concurrent clients, backpressure rejection, malformed frames, hot
//! reload (epoch pinning + prepared-cache invalidation), and graceful
//! shutdown, all against a real TCP listener on 127.0.0.1.

use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use cqd2::cq::eval::{bcq_naive, count_naive, enumerate_naive};
use cqd2::cq::generate::{canonical_query, planted_database};
use cqd2::engine::server::client::Client;
use cqd2::engine::server::frame::{read_frame, write_frame, FrameType, PROTOCOL_VERSION};
use cqd2::engine::server::wire::{ErrorCode, WireError};
use cqd2::engine::server::{Server, ServerConfig, ServerHandle, ServerStats};
use cqd2::engine::textio::{self, parse_workload};
use cqd2::engine::{Catalog, Engine, Workload};
use cqd2::hypergraph::generators::{hyperchain, hypercycle};

/// Run `f` against a live server, then shut the server down and return
/// `f`'s result plus the server's final stats.
fn with_server<R>(
    config: ServerConfig,
    catalog: &Catalog,
    f: impl FnOnce(SocketAddr, &ServerHandle) -> R,
) -> (R, ServerStats) {
    let engine = Engine::default();
    let server = Server::bind("127.0.0.1:0", config).expect("bind loopback");
    let addr = server.local_addr().expect("local addr");
    let handle = server.handle();
    let mut outcome = None;
    let mut stats = None;
    std::thread::scope(|s| {
        let run = s.spawn(|| server.run(&engine, catalog).expect("server run"));
        // Shut the server down even when `f` panics: without this the
        // scope would wait forever for the server thread and turn an
        // assertion failure into a hang.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(addr, &handle)));
        handle.shutdown();
        stats = Some(run.join().expect("server thread"));
        match result {
            Ok(r) => outcome = Some(r),
            Err(payload) => std::panic::resume_unwind(payload),
        }
    });
    (outcome.unwrap(), stats.unwrap())
}

/// A fast config for tests: snappy polling, small queue optional via
/// override.
fn test_config() -> ServerConfig {
    ServerConfig {
        workers: 2,
        poll_interval: Duration::from_millis(5),
        drain_timeout: Duration::from_secs(10),
        ..ServerConfig::default()
    }
}

const FACTS: &str = "R(1, 2)\nR(3, 3)\nS(2, 3)\nS(2, 4)\nS(3, 5)\n";

fn small_catalog() -> Catalog {
    let catalog = Catalog::new();
    catalog.publish_str("main", FACTS).expect("publish main");
    catalog
        .publish_str("empty", "T(0)\n")
        .expect("publish empty");
    catalog
}

#[test]
fn eight_concurrent_clients_get_consistent_answers() {
    // One workload text is the shared source of truth: the same facts
    // go to the server catalog and into the local naive evaluation.
    let workload = format!("Q: R(?x, ?y), S(?y, ?z)\nQ: R(?a, ?a)\n{FACTS}");
    let parsed = parse_workload(&workload).expect("workload parses");
    let q_join = &parsed.queries[0];
    let q_loop = &parsed.queries[1];
    let expect_count = count_naive(q_join, &parsed.db);
    let expect_bool = bcq_naive(q_loop, &parsed.db);
    let expect_tuples = enumerate_naive(q_join, &parsed.db);

    let catalog = small_catalog();
    let clients = 8;
    let rounds = 5;
    let ((), stats) = with_server(test_config(), &catalog, |addr, _| {
        std::thread::scope(|s| {
            for c in 0..clients {
                let expect_tuples = &expect_tuples;
                s.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    let bound = client.bind_db("main").expect("bind");
                    assert_eq!(bound.facts, 5);
                    assert_eq!(bound.epoch, 0);
                    for _ in 0..rounds {
                        // A mixed batch in one frame: count + boolean +
                        // enumerate over repeated structures.
                        let reply = client
                            .request(
                                "@count\nQ: R(?x, ?y), S(?y, ?z)\n\
                                 @boolean\nQ: R(?a, ?a)\n\
                                 @enumerate\nQ: R(?x, ?y), S(?y, ?z)\n",
                            )
                            .unwrap_or_else(|e| panic!("client {c}: {e}"));
                        assert_eq!(reply.results.len(), 3);
                        assert_eq!(reply.results[0].answer.as_count(), Some(expect_count));
                        assert_eq!(reply.results[1].answer.as_bool(), Some(expect_bool));
                        let mut tuples = reply.results[2]
                            .answer
                            .clone()
                            .into_tuples()
                            .expect("tuples");
                        tuples.sort_unstable();
                        assert_eq!(&tuples, expect_tuples);
                    }
                });
            }
        });
    });
    assert_eq!(stats.connections, clients);
    assert_eq!(stats.batches, clients * rounds);
    assert_eq!(stats.answered, clients * rounds * 3);
    assert_eq!(stats.rejected_overload, 0);
    // The per-database prepared cache is shared across connections:
    // each distinct (query text, workload-relevant) structure is
    // prepared a bounded number of times (concurrent first-misses can
    // duplicate work, never more than one prepare per execution), and
    // the steady state is all hits.
    assert!(
        stats.prepared_hits > stats.prepared_misses,
        "warm serving must be hit-dominated: {stats:?}"
    );
    assert_eq!(stats.prepared_hits + stats.prepared_misses, stats.answered);
}

#[test]
fn full_queue_rejects_with_typed_overloaded_frames() {
    // A deliberately expensive fixture so one worker stays busy while
    // the queue (capacity 1) fills: a rank-2 hypercycle with a planted
    // database large enough that counting takes real time.
    let q = canonical_query(&hypercycle(6, 2));
    let db = planted_database(&q, 40, 4000, 11);
    let catalog = Catalog::new();
    catalog
        .publish_str("big", &textio::render_database(&db))
        .expect("publish big");
    let query_line = format!("@count\nQ: {}\n", q.display());

    let config = ServerConfig {
        workers: 1,
        queue_capacity: 1,
        ..test_config()
    };
    let pipelined = 24;
    let ((done, overloaded), stats) = with_server(config, &catalog, |addr, _| {
        let mut client = Client::connect(addr).expect("connect");
        client.bind_db("big").expect("bind");
        // Pipeline a burst of single-query batches without reading any
        // response: the first occupies the worker, the second sits in
        // the queue, the rest must be rejected immediately.
        for _ in 0..pipelined {
            client
                .send(FrameType::Query, query_line.as_bytes())
                .expect("send");
        }
        let mut done = 0u32;
        let mut overloaded = 0u32;
        let mut results = 0u32;
        // Each batch terminates in exactly one Done or one Error frame.
        while done + overloaded < pipelined {
            let frame = client.read().expect("read");
            match frame.frame_type {
                FrameType::Result => results += 1,
                FrameType::Done => done += 1,
                FrameType::Error => {
                    let err: WireError =
                        serde::json::from_str(frame.text().expect("utf8")).expect("json");
                    assert_eq!(err.code, ErrorCode::Overloaded, "{err:?}");
                    assert!(err.request.is_some());
                    // Overloaded rejections carry the live queue
                    // picture for informed client backoff.
                    assert_eq!(err.queue_capacity, Some(1), "{err:?}");
                    assert!(
                        err.queue_depth.is_some(),
                        "Overloaded must report the queue depth: {err:?}"
                    );
                    overloaded += 1;
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(results, done, "every completed batch carried 1 result");
        (done, overloaded)
    });
    assert_eq!(done + overloaded, pipelined);
    assert!(
        overloaded >= 1,
        "a 1-slot queue under a {pipelined}-frame burst must reject: {stats:?}"
    );
    assert!(done >= 1, "accepted work still completes: {stats:?}");
    assert_eq!(stats.rejected_overload, u64::from(overloaded));
    // The server survived the burst and still answers.
    assert_eq!(stats.answered, u64::from(done));
}

#[test]
fn malformed_frames_get_typed_errors() {
    let catalog = small_catalog();
    let max_frame = 4096u32;
    let config = ServerConfig {
        max_frame_len: max_frame,
        ..test_config()
    };
    let ((), stats) = with_server(config, &catalog, |addr, _| {
        let read_error = |stream: &mut TcpStream| -> WireError {
            let frame = read_frame(stream, 1 << 20).expect("error frame");
            assert_eq!(frame.frame_type, FrameType::Error);
            serde::json::from_str(std::str::from_utf8(&frame.payload).unwrap()).expect("json")
        };

        // Wrong version byte: typed Version error, then close.
        let mut s = TcpStream::connect(addr).unwrap();
        std::io::Write::write_all(&mut s, &[9, 1, 0, 0, 0, 0]).unwrap();
        let err = read_error(&mut s);
        assert_eq!(err.code, ErrorCode::Version, "{err:?}");
        assert!(read_frame(&mut s, 1 << 20).is_err(), "connection closed");

        // A protocol-1 peer against this v2 server: the canonical
        // unsupported-version round-trip. The error is typed, names
        // both versions, and the connection closes.
        assert_eq!(PROTOCOL_VERSION, 2, "this suite tests the v2 protocol");
        let mut s = TcpStream::connect(addr).unwrap();
        std::io::Write::write_all(&mut s, &[1, 0x01, 0, 0, 0, 0]).unwrap();
        let err = read_error(&mut s);
        assert_eq!(err.code, ErrorCode::Version, "{err:?}");
        assert!(
            err.message.contains("version 1") && err.message.contains('2'),
            "names both versions: {err:?}"
        );
        assert!(read_frame(&mut s, 1 << 20).is_err(), "connection closed");

        // Unknown frame type.
        let mut s = TcpStream::connect(addr).unwrap();
        std::io::Write::write_all(&mut s, &[PROTOCOL_VERSION, 0x55, 0, 0, 0, 0]).unwrap();
        let err = read_error(&mut s);
        assert_eq!(err.code, ErrorCode::BadFrame);

        // Oversized declared length.
        let mut s = TcpStream::connect(addr).unwrap();
        let mut header = vec![PROTOCOL_VERSION, 0x02];
        header.extend_from_slice(&(max_frame + 1).to_be_bytes());
        std::io::Write::write_all(&mut s, &header).unwrap();
        let err = read_error(&mut s);
        assert_eq!(err.code, ErrorCode::BadFrame);
        assert!(err.message.contains("exceeds"), "{err:?}");

        // Server→client frame type sent by the client.
        let mut s = TcpStream::connect(addr).unwrap();
        write_frame(&mut s, FrameType::Done, b"{}").unwrap();
        let err = read_error(&mut s);
        assert_eq!(err.code, ErrorCode::BadFrame);

        // Request-level errors keep the connection alive.
        let mut client = Client::connect(addr).expect("connect");
        // Query before bind.
        let err = match client.request("Q: R(?x)\n") {
            Err(cqd2::engine::server::ServerError::Rejected(e)) => e,
            other => panic!("{other:?}"),
        };
        assert_eq!(err.code, ErrorCode::NotBound);
        // Unknown database.
        let err = match client.bind_db("nope") {
            Err(cqd2::engine::server::ServerError::Rejected(e)) => e,
            other => panic!("{other:?}"),
        };
        assert_eq!(err.code, ErrorCode::UnknownDb);
        assert!(err.message.contains("main"), "lists served dbs: {err:?}");
        // Bind failure did not unbind anything: now bind properly.
        client.bind_db("main").expect("bind");
        // Parse errors name their line and leave the connection usable.
        let err = match client.request("@count\nQ: R(?x\n") {
            Err(cqd2::engine::server::ServerError::Rejected(e)) => e,
            other => panic!("{other:?}"),
        };
        assert_eq!(err.code, ErrorCode::Parse);
        assert_eq!(err.line, Some(2), "{err:?}");
        // Facts are rejected in query batches.
        let err = match client.request("Q: R(?x)\nR(1)\n") {
            Err(cqd2::engine::server::ServerError::Rejected(e)) => e,
            other => panic!("{other:?}"),
        };
        assert_eq!(err.code, ErrorCode::Parse);
        // …and the connection still answers real queries.
        let result = client.query("R(?x, ?y)", Workload::Count).expect("query");
        assert_eq!(result.answer.as_count(), Some(2));
    });
    assert!(stats.protocol_errors >= 5, "{stats:?}");
    assert!(stats.parse_errors >= 2, "{stats:?}");
}

#[test]
fn graceful_shutdown_drains_and_notifies() {
    let catalog = small_catalog();
    let ((), stats) = with_server(test_config(), &catalog, |addr, handle| {
        let mut client = Client::connect(addr).expect("connect");
        client.bind_db("main").expect("bind");
        let reply = client.request("@count\nQ: S(?x, ?y)\n").expect("request");
        assert_eq!(reply.results[0].answer.as_count(), Some(3));
        // Shut down while the client is idle-connected.
        handle.shutdown();
        assert!(handle.is_shutdown());
        // The connection is told, then closed: a ShuttingDown error
        // frame followed by EOF.
        let frame = client.read().expect("goodbye frame");
        assert_eq!(frame.frame_type, FrameType::Error);
        let err: WireError = serde::json::from_str(frame.text().expect("utf8")).expect("json");
        assert_eq!(err.code, ErrorCode::ShuttingDown, "{err:?}");
        assert!(client.read().is_err(), "EOF after goodbye");
    });
    // `with_server` already proves `run` returned (the scope joined);
    // the counters survived the trip.
    assert_eq!(stats.connections, 1);
    assert_eq!(stats.answered, 1);
}

#[test]
fn enumerate_limits_and_rebinding_work_over_the_wire() {
    let q = canonical_query(&hyperchain(3, 2));
    let db = planted_database(&q, 6, 24, 7);
    let expected = enumerate_naive(&q, &db);
    let catalog = Catalog::new();
    catalog
        .publish_str("chain", &textio::render_database(&db))
        .expect("publish chain");
    catalog
        .publish_str("tiny", "T(1)\nT(2)\n")
        .expect("publish tiny");

    let ((), _) = with_server(test_config(), &catalog, |addr, _| {
        let mut client = Client::connect(addr).expect("connect");
        client.bind_db("chain").expect("bind");
        // Full enumeration matches the naive evaluator.
        let all = client
            .query(&q.display(), Workload::Enumerate { limit: None })
            .expect("enumerate");
        let mut tuples = all.answer.into_tuples().expect("tuples");
        tuples.sort_unstable();
        assert_eq!(tuples, expected);
        // `@enumerate 0` is an explicit empty cap, not "no limit" —
        // over the socket, through the full parse/plan/frame cycle.
        let capped = client
            .query(&q.display(), Workload::Enumerate { limit: Some(0) })
            .expect("enumerate 0");
        assert_eq!(capped.answer.as_tuples().map(<[_]>::len), Some(0));
        // The directive text itself round-trips too.
        let reply = client
            .request(&format!("@enumerate 0\nQ: {}\n", q.display()))
            .expect("@enumerate 0 batch");
        assert_eq!(reply.results[0].answer.as_tuples().map(<[_]>::len), Some(0));
        // Rebinding switches databases mid-connection.
        client.bind_db("tiny").expect("rebind");
        let count = client.query("T(?x)", Workload::Count).expect("count");
        assert_eq!(count.answer.as_count(), Some(2));
    });
}

#[test]
fn reload_roundtrip_swaps_data_and_invalidates_prepared_handles() {
    let catalog = small_catalog();
    let config = ServerConfig {
        allow_reload: true,
        ..test_config()
    };
    let ((), stats) = with_server(config, &catalog, |addr, _| {
        let mut client = Client::connect(addr).expect("connect");
        let bound = client.bind_db("main").expect("bind");
        assert_eq!((bound.facts, bound.epoch), (5, 0));

        // Warm the prepared cache at epoch 0.
        let first = client
            .query("R(?x, ?y), S(?y, ?z)", Workload::Count)
            .expect("query");
        assert_eq!(first.answer.as_count(), Some(3));
        let warm = client
            .query("R(?x, ?y), S(?y, ?z)", Workload::Count)
            .expect("warm query");
        assert_eq!(warm.answer.as_count(), Some(3));
        assert!(warm.prepared_hit, "steady state hits the prepared cache");

        // The catalog admin view before the reload.
        let info = client.catalog_info().expect("catalog info");
        assert!(info.reload_enabled);
        assert_eq!(info.databases.len(), 2);
        let main = info.databases.iter().find(|d| d.name == "main").unwrap();
        assert_eq!((main.epoch, main.facts), (0, 5));

        // Hot reload: a different join shape (one extra S fact).
        let reloaded = client
            .reload(
                "main",
                "R(1, 2)\nR(3, 3)\nS(2, 3)\nS(2, 4)\nS(2, 9)\nS(3, 5)\n",
            )
            .expect("reload");
        assert_eq!((reloaded.epoch, reloaded.facts), (1, 6));

        // The very next query must see the new data — and must NOT be
        // served from the warm epoch-0 handle (epoch invalidation).
        let after = client
            .query("R(?x, ?y), S(?y, ?z)", Workload::Count)
            .expect("query after reload");
        assert_eq!(after.answer.as_count(), Some(4), "new data visible");
        assert!(
            !after.prepared_hit,
            "stale epoch-0 handle must not be served after the reload"
        );
        // …and the re-prepared handle is warm again at epoch 1.
        let warm_again = client
            .query("R(?x, ?y), S(?y, ?z)", Workload::Count)
            .expect("warm after reload");
        assert!(warm_again.prepared_hit);

        // Bind now reports the new epoch; the catalog view updated.
        let rebound = client.bind_db("main").expect("rebind");
        assert_eq!((rebound.facts, rebound.epoch), (6, 1));
        let info = client.catalog_info().expect("catalog info");
        let main = info.databases.iter().find(|d| d.name == "main").unwrap();
        assert_eq!((main.epoch, main.facts), (1, 6));

        // Typed rejections: unknown name…
        let err = match client.reload("ghost", "R(1)\n") {
            Err(cqd2::engine::server::ServerError::Rejected(e)) => e,
            other => panic!("{other:?}"),
        };
        assert_eq!(err.code, ErrorCode::UnknownDb);
        assert!(err.message.contains("main"), "{err:?}");
        // …and a facts parse failure, with the payload line named
        // (line 1 is the database name, so the bad fact is line 3).
        let err = match client.reload("main", "R(1, 2)\nR(banana)\n") {
            Err(cqd2::engine::server::ServerError::Rejected(e)) => e,
            other => panic!("{other:?}"),
        };
        assert_eq!(err.code, ErrorCode::Parse);
        assert_eq!(err.line, Some(3), "{err:?}");
        // A failed reload publishes nothing.
        let info = client.catalog_info().expect("catalog info");
        let main = info.databases.iter().find(|d| d.name == "main").unwrap();
        assert_eq!(main.epoch, 1, "failed reloads must not bump the epoch");
    });
    assert_eq!(stats.reloads, 1);
    assert_eq!(stats.rejected_unauthorized, 0);
}

#[test]
fn reload_requires_authorization() {
    let catalog = small_catalog();
    // Default config: allow_reload is off.
    let ((), stats) = with_server(test_config(), &catalog, |addr, _| {
        let mut client = Client::connect(addr).expect("connect");
        let err = match client.reload("main", "R(9, 9)\n") {
            Err(cqd2::engine::server::ServerError::Rejected(e)) => e,
            other => panic!("{other:?}"),
        };
        assert_eq!(err.code, ErrorCode::Unauthorized, "{err:?}");
        assert!(err.message.contains("--allow-reload"), "{err:?}");
        // The rejection is request-level: the connection survives and
        // the data is untouched.
        client.bind_db("main").expect("bind");
        let count = client.query("R(?x, ?y)", Workload::Count).expect("query");
        assert_eq!(count.answer.as_count(), Some(2));
        // CatalogInfo is read-only and needs no authorization.
        let info = client.catalog_info().expect("catalog info");
        assert!(!info.reload_enabled);
    });
    assert_eq!(stats.rejected_unauthorized, 1);
    assert_eq!(stats.reloads, 0);
}

#[test]
fn delta_roundtrip_merges_incrementally_and_rejections_leave_epoch_unmoved() {
    let catalog = small_catalog();
    let config = ServerConfig {
        allow_reload: true,
        ..test_config()
    };
    let ((), stats) = with_server(config, &catalog, |addr, _| {
        let mut client = Client::connect(addr).expect("connect");
        client.bind_db("main").expect("bind");

        // Warm the prepared cache at epoch 0.
        let first = client
            .query("R(?x, ?y), S(?y, ?z)", Workload::Count)
            .expect("query");
        assert_eq!(first.answer.as_count(), Some(3));
        let warm = client
            .query("R(?x, ?y), S(?y, ?z)", Workload::Count)
            .expect("warm query");
        assert!(warm.prepared_hit);

        // Apply a delta: two S inserts, one S delete — R is untouched
        // and therefore structurally shared into the new epoch.
        let applied = client
            .delta("main", "@insert\nS(2, 9)\nS(2, 10)\n@delete\nS(3, 5)\n")
            .expect("delta");
        assert_eq!((applied.epoch, applied.inserted, applied.deleted), (1, 2, 1));
        assert_eq!(applied.relations_touched, vec!["S".to_string()]);
        assert_eq!(applied.facts, 6);
        // This fixture is tiny, so its plans are naive joins with no
        // bag tree to refresh: the cache migrates by re-preparing.
        assert_eq!(applied.prepared_warm, 0);
        assert!(applied.prepared_reprepared >= 1, "{applied:?}");

        // The very next query sees the new data — and unlike a reload,
        // it is still a prepared-cache HIT: the handle was migrated
        // across the epoch, not purged.
        let after = client
            .query("R(?x, ?y), S(?y, ?z)", Workload::Count)
            .expect("query after delta");
        assert_eq!(after.answer.as_count(), Some(4), "new data visible");
        assert!(
            after.prepared_hit,
            "delta must keep the prepared cache warm: {after:?}"
        );

        // Typed rejections, each leaving the epoch unmoved: a parse
        // failure (payload line 1 is the name, the bad fact is line 3)…
        let err = match client.delta("main", "@insert\nS(banana)\n") {
            Err(cqd2::engine::server::ServerError::Rejected(e)) => e,
            other => panic!("{other:?}"),
        };
        assert_eq!(err.code, ErrorCode::Parse);
        assert_eq!(err.line, Some(3), "{err:?}");
        // …a delta the kernel refuses wholesale (unknown relation)…
        let err = match client.delta("main", "@insert\nGhost(1)\n") {
            Err(cqd2::engine::server::ServerError::Rejected(e)) => e,
            other => panic!("{other:?}"),
        };
        assert_eq!(err.code, ErrorCode::Delta);
        assert!(err.message.contains("Ghost"), "{err:?}");
        // …an arity mismatch on a real relation…
        let err = match client.delta("main", "@delete\nR(1)\n") {
            Err(cqd2::engine::server::ServerError::Rejected(e)) => e,
            other => panic!("{other:?}"),
        };
        assert_eq!(err.code, ErrorCode::Delta, "{err:?}");
        // …and an unknown database name.
        let err = match client.delta("ghost", "@insert\nR(1, 1)\n") {
            Err(cqd2::engine::server::ServerError::Rejected(e)) => e,
            other => panic!("{other:?}"),
        };
        assert_eq!(err.code, ErrorCode::UnknownDb);

        // None of the rejections published anything.
        let info = client.catalog_info().expect("catalog info");
        let main = info.databases.iter().find(|d| d.name == "main").unwrap();
        assert_eq!((main.epoch, main.facts), (1, 6));

        // The Stats frame reports the delta plane's counters.
        let report = client.stats().expect("stats");
        assert_eq!(report.delta_batches, 1);
        assert_eq!((report.facts_inserted, report.facts_deleted), (2, 1));
        assert_eq!(report.delta_errors, 2, "kernel refusals only");
        let main = report.databases.iter().find(|d| d.name == "main").unwrap();
        assert_eq!(main.delta_batches, 1);
        assert_eq!((main.facts_inserted, main.facts_deleted), (2, 1));
    });
    assert_eq!(stats.delta_batches, 1);
    assert_eq!(stats.delta_errors, 2);
    assert_eq!(stats.parse_errors, 1);
}

#[test]
fn delta_requires_authorization() {
    let catalog = small_catalog();
    // Deltas mutate served data, so they ride the reload gate — off by
    // default.
    let ((), stats) = with_server(test_config(), &catalog, |addr, _| {
        let mut client = Client::connect(addr).expect("connect");
        let err = match client.delta("main", "@insert\nR(9, 9)\n") {
            Err(cqd2::engine::server::ServerError::Rejected(e)) => e,
            other => panic!("{other:?}"),
        };
        assert_eq!(err.code, ErrorCode::Unauthorized, "{err:?}");
        assert!(err.message.contains("--allow-reload"), "{err:?}");
        // Request-level rejection: the connection survives, the data is
        // untouched.
        client.bind_db("main").expect("bind");
        let count = client.query("R(?x, ?y)", Workload::Count).expect("query");
        assert_eq!(count.answer.as_count(), Some(2));
    });
    assert_eq!(stats.rejected_unauthorized, 1);
    assert_eq!(stats.delta_batches, 0);
}

#[test]
fn delta_migrates_ghd_prepared_handles_warm_over_the_wire() {
    // A planted fixture large enough that the data estimate keeps the
    // GHD plan: the server-side cache migration must go through the
    // warm-overlay path (dirty-spine refresh), not a re-prepare.
    let q = cqd2::cq::ConjunctiveQuery::parse(&[
        ("R", &["?x", "?y"]),
        ("S", &["?y", "?z"]),
        ("U", &["?z", "?w"]),
    ]);
    let db = planted_database(&q, 60, 400, 5);
    let before = count_naive(&q, &db);
    let z = db.relation("S").unwrap().tuples[0][1];
    let catalog = Catalog::new();
    catalog.publish("hot", db).expect("publish");
    let config = ServerConfig {
        allow_reload: true,
        workers: 1,
        ..test_config()
    };
    let ((), stats) = with_server(config, &catalog, |addr, _| {
        let mut client = Client::connect(addr).expect("connect");
        client.bind_db("hot").expect("bind");
        let query_text = "R(?x, ?y), S(?y, ?z), U(?z, ?w)";

        // Warm the handle (plan + bag tree) at epoch 0.
        let first = client.query(query_text, Workload::Count).expect("query");
        assert_eq!(first.answer.as_count(), Some(before));
        let warm = client.query(query_text, Workload::Count).expect("warm");
        assert!(warm.prepared_hit);
        // Counts route through the counting-DP strategy — still a
        // GHD-decomposed plan with a bag tree, i.e. warm-overlay
        // eligible (the point of this test); `naive-join` would not be.
        assert_eq!(warm.strategy, "counting-dp", "{warm:?}");

        // Graft a fresh U edge onto a live S endpoint: only U's bag
        // spine is dirty; the server migrates the handle warm.
        let applied = client
            .delta("hot", &format!("@insert\nU({z}, 999999)\n"))
            .expect("delta");
        assert_eq!(applied.epoch, 1);
        assert_eq!(applied.relations_touched, vec!["U".to_string()]);
        assert!(applied.prepared_warm >= 1, "{applied:?}");
        assert_eq!(applied.prepared_reprepared, 0, "{applied:?}");
        assert!(
            applied.bags_remat >= 1,
            "the dirty spine re-materializes: {applied:?}"
        );

        // The migrated handle serves the post-delta answer as a hit.
        let after = client.query(query_text, Workload::Count).expect("after");
        assert!(after.prepared_hit, "{after:?}");
        let got = after.answer.as_count().expect("count");
        assert!(got > before, "grafted edge adds answers: {before} -> {got}");

        let report = client.stats().expect("stats");
        assert!(report.bags_remat >= 1, "{report:?}");
        let hot = report.databases.iter().find(|d| d.name == "hot").unwrap();
        assert!(hot.bags_remat >= 1);
    });
    assert_eq!(stats.delta_batches, 1);
    assert!(stats.bags_remat >= 1, "{stats:?}");
}

#[test]
fn reload_under_load_pins_inflight_batches_to_their_epoch() {
    // The acceptance scenario end-to-end: a multi-query enumeration
    // batch is accepted (pinning the epoch-0 snapshot), a concurrent
    // Reload publishes epoch 1 while the batch is still streaming its
    // results, and every remaining result of the in-flight batch still
    // answers from the OLD data — then the next query on the same
    // connection observes the new data.
    let q = canonical_query(&hyperchain(3, 2));
    let old_db = planted_database(&q, 6, 24, 7);
    let old_tuples = enumerate_naive(&q, &old_db);
    let old_count = count_naive(&q, &old_db);
    assert!(!old_tuples.is_empty(), "fixture must have answers");
    // The reloaded database is empty-but-typed: every post-reload
    // answer is trivially distinguishable from the old ones.
    let new_facts = "R0(0, 0)\n";

    let catalog = Catalog::new();
    catalog
        .publish_str("hot", &textio::render_database(&old_db))
        .expect("publish hot");
    let config = ServerConfig {
        // One worker: the batch executes sequentially, so results
        // stream one by one while the reload lands in between.
        workers: 1,
        allow_reload: true,
        ..test_config()
    };
    let queries_in_batch = 6u64;
    let ((), stats) = with_server(config, &catalog, |addr, _| {
        let mut client = Client::connect(addr).expect("connect");
        client.bind_db("hot").expect("bind");
        let batch = {
            let mut text = String::new();
            for _ in 0..queries_in_batch {
                text.push_str(&format!("@enumerate\nQ: {}\n", q.display()));
            }
            text
        };
        // Pipeline the batch without reading: it pins epoch 0 when the
        // server accepts it.
        client
            .send(FrameType::Query, batch.as_bytes())
            .expect("send batch");
        let request = client.last_request();

        // Proof the batch is in flight: its first Result frame arrived.
        let first = client.read().expect("first result");
        assert_eq!(first.frame_type, FrameType::Result);

        // Concurrent admin connection reloads the database under it.
        let mut admin = Client::connect(addr).expect("admin connect");
        let reloaded = admin.reload("hot", new_facts).expect("reload");
        assert_eq!(reloaded.epoch, 1);

        // Drain the in-flight batch: every result (including those
        // executed after the reload) carries the OLD epoch's answers.
        let mut results = 1u64;
        loop {
            let frame = client.read().expect("frame");
            match frame.frame_type {
                FrameType::Result => results += 1,
                FrameType::Done => break,
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(results, queries_in_batch);
        // Spot-check correctness of a full post-reload re-read: run the
        // same batch's first query again as a fresh request — it now
        // sees the NEW (empty) data…
        let after = client
            .query(&q.display(), Workload::Enumerate { limit: None })
            .expect("query after reload");
        assert_eq!(
            after.answer.as_tuples().map(<[_]>::len),
            Some(0),
            "fresh queries observe the reloaded data"
        );
        // …and a count agrees with the old data having been old_count
        // just before (sanity that the fixture distinguished them).
        assert_ne!(old_count, 0);
        let _ = request;
    });
    // All in-flight answers were delivered despite the reload.
    assert_eq!(stats.answered, queries_in_batch + 1);
    assert_eq!(stats.reloads, 1);
}

#[test]
fn stats_frame_reports_histograms_and_traces_break_down_latency() {
    // The observability acceptance scenario: after a concurrent
    // 8-client batch storm, a `Stats` admin frame must report per-
    // database latency histograms with plausible quantiles, a queue
    // high-water mark, and prepared-cache hits — and a `@trace` batch
    // must return a span breakdown whose phase sum never exceeds the
    // result's total `server_micros`.
    let catalog = small_catalog();
    let clients = 8;
    let rounds = 6;
    let ((), _) = with_server(test_config(), &catalog, |addr, _| {
        std::thread::scope(|s| {
            for c in 0..clients {
                s.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    client.bind_db("main").expect("bind");
                    for _ in 0..rounds {
                        let reply = client
                            .request(
                                "@count\nQ: R(?x, ?y), S(?y, ?z)\n\
                                 @boolean\nQ: R(?a, ?a)\n",
                            )
                            .unwrap_or_else(|e| panic!("client {c}: {e}"));
                        assert_eq!(reply.results.len(), 2);
                        // Every result is stamped with its server-side
                        // wall time; untraced batches carry no spans.
                        for r in &reply.results {
                            assert!(r.trace.is_none());
                        }
                    }
                });
            }
        });

        let mut observer = Client::connect(addr).expect("stats connect");
        let stats = observer.stats().expect("stats frame");
        assert_eq!(stats.batches, clients * rounds);
        assert_eq!(stats.answered, clients * rounds * 2);
        assert!(
            stats.queue_high_water >= 1,
            "any accepted batch raises the high-water mark: {stats:?}"
        );
        assert!(stats.queue_high_water as usize <= stats.queue_capacity as usize);
        assert!(stats.prepared_hits > 0, "warm serving must hit: {stats:?}");
        assert!(stats.active_connections >= 1, "the observer is connected");
        let main = stats.databases.iter().find(|d| d.name == "main").unwrap();
        assert_eq!(main.batches, clients * rounds);
        assert_eq!(main.queries, clients * rounds * 2);
        assert!(main.prepared_hits > 0);
        let h = &main.latency;
        assert_eq!(
            h.count,
            clients * rounds * 2,
            "every answered query lands in the histogram"
        );
        assert!(h.p50_micros <= h.p90_micros, "{h:?}");
        assert!(h.p90_micros <= h.p99_micros, "{h:?}");
        assert!(h.p99_micros <= h.max_micros, "{h:?}");
        assert!(h.max_micros > 0, "answers cannot take zero time: {h:?}");
        // The untouched database has an empty section.
        let empty = stats.databases.iter().find(|d| d.name == "empty").unwrap();
        assert_eq!((empty.batches, empty.latency.count), (0, 0));

        // A `@trace` batch returns per-phase spans on every result.
        observer.bind_db("main").expect("bind");
        let reply = observer
            .request("@trace\n@count\nQ: R(?x, ?y), S(?y, ?z)\n@boolean\nQ: R(?a, ?a)\n")
            .expect("traced batch");
        assert_eq!(reply.results.len(), 2);
        for r in &reply.results {
            let trace = r.trace.as_ref().expect("@trace attaches spans");
            assert!(!trace.spans.is_empty());
            let phase_sum: u64 = trace.spans.iter().map(|s| s.micros).sum();
            assert_eq!(trace.total_micros, phase_sum);
            assert!(
                phase_sum <= r.server_micros,
                "disjoint phases cannot exceed the total: {phase_sum} > {} in {trace:?}",
                r.server_micros
            );
            let phases: Vec<&str> = trace.spans.iter().map(|s| s.phase.as_str()).collect();
            for expected in ["queue_wait", "parse", "plan", "execute", "serialize"] {
                assert!(phases.contains(&expected), "missing {expected}: {phases:?}");
            }
            let plan = trace.spans.iter().find(|s| s.phase == "plan").unwrap();
            let detail = plan.detail.as_deref().expect("plan span is annotated");
            assert!(
                detail.contains("cache") && detail.contains("prepared"),
                "plan detail names its cache provenance: {detail}"
            );
        }

        // Tracing is per-batch: the next plain batch is span-free.
        let reply = observer
            .request("@count\nQ: R(?x, ?y), S(?y, ?z)\n")
            .expect("plain batch");
        assert!(reply.results[0].trace.is_none());
    });
}

#[test]
fn inflight_results_after_reload_carry_old_answers() {
    // Sharper variant of the pinning test: verify the *content* of
    // results delivered after the reload, not just their count. A
    // two-query batch (count + enumerate) is accepted at epoch 0; the
    // reload lands after the first result; the second result must still
    // equal the old data's answer set exactly.
    let q = canonical_query(&hyperchain(3, 2));
    let old_db = planted_database(&q, 6, 24, 13);
    let old_tuples = enumerate_naive(&q, &old_db);
    let old_count = count_naive(&q, &old_db);

    let catalog = Catalog::new();
    catalog
        .publish_str("hot", &textio::render_database(&old_db))
        .expect("publish hot");
    let config = ServerConfig {
        workers: 1,
        allow_reload: true,
        ..test_config()
    };
    let ((), _) = with_server(config, &catalog, |addr, _| {
        let mut client = Client::connect(addr).expect("connect");
        client.bind_db("hot").expect("bind");
        let batch = format!(
            "@count\nQ: {}\n@enumerate\nQ: {}\n",
            q.display(),
            q.display()
        );
        client
            .send(FrameType::Query, batch.as_bytes())
            .expect("send batch");
        // First result (the count) proves the batch is executing.
        let frame = client.read().expect("first result");
        assert_eq!(frame.frame_type, FrameType::Result);
        let first: cqd2::engine::server::wire::WireResult =
            serde::json::from_str(frame.text().expect("utf8")).expect("json");
        assert_eq!(first.answer.as_count(), Some(old_count));

        // Reload from a second connection, synchronously.
        let mut admin = Client::connect(addr).expect("admin connect");
        admin.reload("hot", "R0(0, 0)\n").expect("reload");

        // The enumerate result was (or is being) computed against the
        // pinned epoch-0 snapshot: full old answer set, bit for bit.
        let frame = client.read().expect("second result");
        assert_eq!(frame.frame_type, FrameType::Result);
        let second: cqd2::engine::server::wire::WireResult =
            serde::json::from_str(frame.text().expect("utf8")).expect("json");
        let mut tuples = second.answer.into_tuples().expect("tuples");
        tuples.sort_unstable();
        assert_eq!(
            tuples, old_tuples,
            "in-flight answers come from the pinned epoch"
        );
        let frame = client.read().expect("done");
        assert_eq!(frame.frame_type, FrameType::Done);
    });
}

#[test]
fn snapshot_reload_under_load_pins_inflight_batches_and_rejects_bad_paths() {
    // The `Reload { path }` acceptance scenario: a server-local `.cqds`
    // snapshot is swapped in while an enumeration batch is mid-flight —
    // the in-flight batch finishes on its pinned epoch, fresh queries
    // see the snapshot's data, and every bad path (missing file, not a
    // snapshot, empty path) is a typed rejection that leaves the old
    // epoch serving.
    let q = canonical_query(&hyperchain(3, 2));
    let old_db = planted_database(&q, 6, 24, 7);
    let new_db = planted_database(&q, 6, 24, 99);
    let new_count = count_naive(&q, &new_db);
    assert_ne!(
        count_naive(&q, &old_db),
        new_count,
        "fixture databases must be distinguishable"
    );

    let dir = std::env::temp_dir();
    let snap_path = dir.join(format!("cqd2-e2e-reload-{}.cqds", std::process::id()));
    let snap_path = snap_path.to_str().expect("temp path is UTF-8").to_string();
    cqd2::engine::store::write_snapshot(&snap_path, &new_db).expect("write snapshot");
    let junk_path = dir.join(format!("cqd2-e2e-junk-{}.txt", std::process::id()));
    let junk_path = junk_path.to_str().expect("temp path is UTF-8").to_string();
    std::fs::write(&junk_path, "R(1, 2)\nnot a snapshot\n").expect("write junk");

    let catalog = Catalog::new();
    catalog
        .publish_str("hot", &textio::render_database(&old_db))
        .expect("publish hot");
    let config = ServerConfig {
        // One worker: the batch executes sequentially, so results
        // stream one by one while the snapshot reload lands in between.
        workers: 1,
        allow_reload: true,
        ..test_config()
    };
    let queries_in_batch = 6u64;
    let ((), stats) = with_server(config, &catalog, |addr, _| {
        let mut client = Client::connect(addr).expect("connect");
        client.bind_db("hot").expect("bind");
        let batch = {
            let mut text = String::new();
            for _ in 0..queries_in_batch {
                text.push_str(&format!("@enumerate\nQ: {}\n", q.display()));
            }
            text
        };
        client
            .send(FrameType::Query, batch.as_bytes())
            .expect("send batch");
        let first = client.read().expect("first result");
        assert_eq!(first.frame_type, FrameType::Result);

        // Concurrent admin connection swaps in the snapshot file.
        let mut admin = Client::connect(addr).expect("admin connect");
        let reloaded = admin
            .reload_snapshot("hot", &snap_path)
            .expect("snapshot reload");
        assert_eq!(reloaded.epoch, 1);
        assert_eq!(reloaded.facts as usize, new_db.size());

        // The in-flight batch still drains completely on epoch 0.
        let mut results = 1u64;
        loop {
            let frame = client.read().expect("frame");
            match frame.frame_type {
                FrameType::Result => results += 1,
                FrameType::Done => break,
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(results, queries_in_batch);

        // A fresh query on the same connection observes the snapshot.
        let after = client
            .query(&q.display(), Workload::Count)
            .expect("query after snapshot reload");
        assert_eq!(after.answer.as_count(), Some(new_count));

        // Bad path #1: missing file — typed Store rejection, old epoch
        // keeps serving, connection survives.
        let err = match admin.reload_snapshot("hot", "/nonexistent/ghost.cqds") {
            Err(cqd2::engine::server::ServerError::Rejected(e)) => e,
            other => panic!("missing snapshot accepted: {other:?}"),
        };
        assert_eq!(err.code, ErrorCode::Store);
        assert!(err.message.contains("ghost.cqds"), "{err:?}");

        // Bad path #2: a real file that is not a snapshot.
        let err = match admin.reload_snapshot("hot", &junk_path) {
            Err(cqd2::engine::server::ServerError::Rejected(e)) => e,
            other => panic!("junk file accepted: {other:?}"),
        };
        assert_eq!(err.code, ErrorCode::Store);

        // Bad path #3: `@snapshot` with no path is a malformed frame.
        let err = match admin.reload("hot", "@snapshot") {
            Err(cqd2::engine::server::ServerError::Rejected(e)) => e,
            other => panic!("empty path accepted: {other:?}"),
        };
        assert_eq!(err.code, ErrorCode::BadFrame);

        // None of the failures bumped the epoch; the connection still
        // answers with the snapshot's data.
        let info = admin.catalog_info().expect("catalog info");
        let hot = info.databases.iter().find(|d| d.name == "hot").unwrap();
        assert_eq!(hot.epoch, 1, "failed snapshot reloads must not publish");
        let again = admin_query_count(&mut admin, &q);
        assert_eq!(again, Some(new_count));
    });
    assert_eq!(stats.reloads, 1, "only the successful swap counts");
    assert_eq!(
        stats.store_errors, 2,
        "both file failures were typed Store errors"
    );

    std::fs::remove_file(&snap_path).ok();
    std::fs::remove_file(&junk_path).ok();
}

/// Bind-and-count helper for the snapshot reload test's final probe.
fn admin_query_count(admin: &mut Client, q: &cqd2::cq::ConjunctiveQuery) -> Option<u128> {
    admin.bind_db("hot").expect("bind");
    admin
        .query(&q.display(), Workload::Count)
        .expect("count")
        .answer
        .as_count()
}
