//! Cross-crate consistency checks: the width identities and dualities the
//! paper relies on, validated across the solver implementations.

use cqd2::decomp::dual_bound::ghd_via_dual;
use cqd2::decomp::widths::{fhw_exact, ghw_exact, primal_graph, treewidth_exact};
use cqd2::dilution::duality::dual_as_graph;
use cqd2::hypergraph::generators::{grid_graph, hyperchain, hypercycle, random_degree_bounded};
use cqd2::hypergraph::{dual, reduce};
use cqd2::jigsaw::jigsaw;

#[test]
fn lemma_4_6_bound_on_random_degree2_hypergraphs() {
    // ghw(H) ≤ tw(H^d) + 1 for reduced H.
    for seed in 0..8 {
        let h = random_degree_bounded(7, 3, 2, 0.6, seed);
        let (h, _) = reduce::reduce(&h);
        if h.num_vertices() == 0 || h.num_edges() == 0 {
            continue;
        }
        let ghw = ghw_exact(&h).expect("small");
        let (hd, _) = dual(&h);
        let tw_dual = treewidth_exact(&primal_graph(&hd)).expect("small");
        assert!(
            ghw <= tw_dual + 1,
            "Lemma 4.6 violated on seed {seed}: ghw {ghw} > tw(H^d)+1 = {}",
            tw_dual + 1
        );
        // And the constructive GHD realizes the bound.
        let ghd = ghd_via_dual(&h);
        ghd.validate(&h).unwrap();
        assert!(ghd.width() <= tw_dual + 1);
    }
}

#[test]
fn width_chain_fhw_le_ghw() {
    for seed in 0..8 {
        let h = random_degree_bounded(7, 3, 3, 0.6, seed);
        if h.num_edges() == 0 {
            continue;
        }
        let ghw = ghw_exact(&h).expect("small") as f64;
        let fhw = fhw_exact(&h).expect("small");
        assert!(fhw <= ghw + 1e-9, "fhw {fhw} > ghw {ghw} (seed {seed})");
        assert!(fhw >= 1.0 - 1e-9 || ghw == 0.0);
    }
}

#[test]
fn jigsaw_dual_is_grid_and_widths_match() {
    for n in 2..=3 {
        let j = jigsaw(n, n);
        // dual(J_n) = grid_n.
        let back = dual_as_graph(&j);
        assert!(cqd2::hypergraph::are_isomorphic(
            &back.to_hypergraph(),
            &grid_graph(n, n).to_hypergraph()
        ));
        // tw(grid_n) = n, so Lemma 4.6 gives ghw(J_n) ≤ n+1; the
        // balanced-separator bound gives ≥ n.
        let tw = treewidth_exact(&back).unwrap();
        assert_eq!(tw, n);
        let w = ghw_exact(&j).unwrap();
        assert!(w >= n && w <= n + 1);
    }
}

#[test]
fn degree2_fhw_ghw_equivalence_spotcheck() {
    // Section 2: for bounded degree, bounded fhw ⟺ bounded ghw. Spot
    // check the quantitative gap on degree-2 instances: ghw ≤ 2·fhw + 1
    // comfortably holds on our samples.
    for seed in 0..6 {
        let h = random_degree_bounded(6, 3, 2, 0.7, seed);
        if h.num_edges() == 0 {
            continue;
        }
        let g = ghw_exact(&h).unwrap() as f64;
        let f = fhw_exact(&h).unwrap();
        assert!(g <= 2.0 * f + 1.0 + 1e-9, "seed {seed}: ghw {g}, fhw {f}");
    }
}

#[test]
fn acyclic_families_have_unit_widths() {
    for h in [hyperchain(6, 4), hyperchain(3, 2)] {
        assert_eq!(ghw_exact(&h), Some(1));
        let f = fhw_exact(&h).unwrap();
        assert!((f - 1.0).abs() < 1e-9);
    }
    let c = hypercycle(5, 3);
    assert_eq!(ghw_exact(&c), Some(2));
}

#[test]
fn semantic_ghw_equals_ghw_of_core() {
    use cqd2::cq::hom::{core_of, semantic_ghw};
    use cqd2::cq::ConjunctiveQuery;
    // A degree-2 cyclic query with a redundant duplicate branch.
    let q = ConjunctiveQuery::parse(&[
        ("R", &["?x", "?y"]),
        ("S", &["?y", "?z"]),
        ("T", &["?z", "?x"]),
        ("R", &["?x2", "?y2"]),
        ("S", &["?y2", "?z2"]),
    ]);
    let core = core_of(&q);
    assert_eq!(core.atoms.len(), 3);
    assert_eq!(
        semantic_ghw(&q),
        ghw_exact(&core.hypergraph()),
        "sem-ghw must be the core's ghw"
    );
    // Full query ghw is ≥ the semantic one.
    let full = ghw_exact(&q.hypergraph()).unwrap();
    assert!(full >= semantic_ghw(&q).unwrap());
}

#[test]
fn jigsaw_column_reduction_composes_with_extraction() {
    // J_3,3 → J_3,2 → (transpose ≅ J_2,3) chain of dilutions, verified.
    use cqd2::jigsaw::jigsaw::column_reduction_sequence;
    let seq = column_reduction_sequence(3, 3);
    let j32 = seq.apply(&jigsaw(3, 3)).unwrap();
    assert!(cqd2::hypergraph::are_isomorphic(&j32, &jigsaw(3, 2)));
    let ghw_before = ghw_exact(&jigsaw(3, 3)).unwrap();
    let ghw_after = ghw_exact(&j32).unwrap();
    assert!(ghw_after <= ghw_before, "Lemma 3.2(3) across columns");
}
