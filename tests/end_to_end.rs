//! End-to-end integration of the paper's main pipeline (Theorem 4.8's
//! constructive content):
//!
//! degree-2 hypergraph with non-trivial ghw
//!   → Theorem 4.7: verified dilution sequence to a jigsaw
//!   → Theorem 3.4: instance over the jigsaw reduced to an instance over
//!     the original hypergraph, answers preserved parsimoniously.

use cqd2::cq::generate::{planted_database, random_database};
use cqd2::cq::Database;
use cqd2::dilution::decide::verify_dilution;
use cqd2::hypergraph::are_isomorphic;
use cqd2::jigsaw::extract::decorated_jigsaw_dual;
use cqd2::jigsaw::{extract_jigsaw, jigsaw};
use cqd2::reduction::{reduce_along, verify_reduction, Instance};

#[test]
fn theorem_4_8_pipeline_on_decorated_host() {
    // A decorated degree-2 host hiding a 3x3 grid in its dual.
    let host = decorated_jigsaw_dual(3, 3, 1, 1);
    assert!(host.max_degree() <= 2);

    // Theorem 4.7: extract the jigsaw with a verified dilution sequence.
    let extraction = extract_jigsaw(&host, 3, 3_000_000)
        .expect("degree-2 host")
        .expect("hidden jigsaw found");
    assert_eq!(extraction.n, 3);
    let target = jigsaw(3, 3);
    verify_dilution(&host, &target, &extraction.sequence).unwrap();

    // The sequence's concrete result (isomorphic to the jigsaw).
    let concrete = extraction.sequence.apply(&host).unwrap();
    assert!(are_isomorphic(&concrete, &target));

    // Theorem 3.4: an instance over the jigsaw-shaped result reduces to an
    // instance over the decorated host with identical answers.
    for seed in 0..3 {
        let proto = Instance::canonical(&concrete, Database::new(), "Q");
        let db = planted_database(&proto.query, 4, 12, seed);
        let instance = Instance::canonical(&concrete, db, "Q");
        let report = reduce_along(&host, &extraction.sequence, &instance).unwrap();
        verify_reduction(&instance, &report).unwrap();
        // The reduced instance lives on the host hypergraph.
        assert!(report.instance.is_bound_to(&host));
    }
}

#[test]
fn hardness_transfer_preserves_unsatisfiability() {
    // Reduction of a NO-instance stays NO (both directions of the
    // many-one reduction matter).
    let host = decorated_jigsaw_dual(2, 2, 1, 0);
    let extraction = extract_jigsaw(&host, 2, 3_000_000).unwrap().unwrap();
    let concrete = extraction.sequence.apply(&host).unwrap();
    let proto = Instance::canonical(&concrete, Database::new(), "Q");
    // Random database that happens to have no solution: try seeds until
    // one is unsatisfiable (tiny domain makes both cases common).
    let mut tested_no = false;
    let mut tested_yes = false;
    for seed in 0..20 {
        let db = random_database(&proto.query, 7, 4, seed);
        let instance = Instance::canonical(&concrete, db, "Q");
        let answer = cqd2::cq::eval::bcq_naive(&instance.query, &instance.db);
        let report = reduce_along(&host, &extraction.sequence, &instance).unwrap();
        let reduced_answer = cqd2::cq::eval::bcq_naive(&report.instance.query, &report.instance.db);
        assert_eq!(answer, reduced_answer, "BCQ answer changed (seed {seed})");
        verify_reduction(&instance, &report).unwrap();
        tested_no |= !answer;
        tested_yes |= answer;
        if tested_no && tested_yes {
            break;
        }
    }
    assert!(tested_no, "no unsatisfiable instance sampled");
}

#[test]
fn ghw_transfers_along_the_extraction() {
    // Lemma 3.2(3) across the whole pipeline: ghw(host) ≥ ghw(jigsaw) ≥ n.
    let host = decorated_jigsaw_dual(2, 2, 1, 0);
    let extraction = extract_jigsaw(&host, 2, 3_000_000).unwrap().unwrap();
    let host_ghw = cqd2::decomp::widths::ghw_exact(&host).expect("small host");
    let jig_ghw =
        cqd2::decomp::widths::ghw_exact(&jigsaw(extraction.n, extraction.n)).expect("small");
    assert!(host_ghw >= jig_ghw);
    assert!(jig_ghw >= extraction.n);
}

#[test]
fn bcq_solving_end_to_end_on_jigsaw_queries() {
    // Prop. 2.2 in action: degree-2 jigsaw queries solved via GHD agree
    // with naive on planted and random databases.
    let j = jigsaw(2, 3);
    let q = cqd2::cq::generate::canonical_query(&j);
    let ghd = cqd2::decomp::widths::ghw_decomposition(&j).expect("small");
    assert!(ghd.width() <= 3);
    for seed in 0..4 {
        let db = planted_database(&q, 5, 15, seed);
        assert!(cqd2::cq::eval::bcq_via_ghd(&q, &db, &ghd).unwrap());
        let db2 = random_database(&q, 4, 6, seed);
        assert_eq!(
            cqd2::cq::eval::bcq_naive(&q, &db2),
            cqd2::cq::eval::bcq_via_ghd(&q, &db2, &ghd).unwrap(),
        );
        assert_eq!(
            cqd2::cq::eval::count_naive(&q, &db2),
            cqd2::cq::eval::count_via_ghd(&q, &db2, &ghd).unwrap(),
        );
    }
}

#[test]
fn facade_analyze_on_pipeline_hosts() {
    let host = decorated_jigsaw_dual(2, 3, 1, 1);
    let report = cqd2::analyze(&host);
    assert_eq!(report.degree, 2);
    assert!(report.ghw_lower >= 2);
    let (n, _) = report.jigsaw.expect("jigsaw found");
    assert!(n >= 2);
}
