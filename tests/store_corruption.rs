//! Corruption robustness for the `.cqds` snapshot store: **every**
//! mutation of a valid snapshot must surface as a typed
//! [`StoreError`] — never a panic, never an attempt to allocate
//! attacker-controlled amounts of memory.
//!
//! The sweeps are systematic, not sampled: every single-byte flip and
//! every truncation length of a real snapshot is tried. Structural
//! attacks (oversized counts, out-of-bounds offsets, zero arities) are
//! patched into the file and *resealed* with valid checksums so they
//! reach the structural validators instead of being caught by the
//! checksum line of defense.
//!
//! Version-skew and reserved-flag semantics (the forward-compatibility
//! contract) ride along: a bumped writer version is rejected naming
//! both versions, and unknown flag bits survive a round-trip untouched.

use cqd2::cq::Database;
use cqd2::engine::store::{
    decode_snapshot, encode_snapshot, encode_snapshot_with, inspect_bytes, reseal, StoreError,
    FORMAT_VERSION,
};

/// A small but structurally rich database: multiple relations, an empty
/// relation, a wide row, extreme values.
fn sample_db() -> Database {
    let mut db = Database::new();
    db.insert("R", &[1, 2]);
    db.insert("R", &[3, 4]);
    db.insert("R", &[u64::MAX, 0]);
    db.insert("S", &[7]);
    db.insert("Wide", &[1, 2, 3, 4, u64::MAX]);
    db.insert_sorted_relation("Empty", 2, Vec::new())
        .expect("fresh name");
    db
}

/// Decode + inspect under `catch_unwind`: the sweep's job is proving
/// *absence of panics*, so a panic is reported with the mutation that
/// caused it rather than as a bare test abort.
fn must_fail_typed(bytes: &[u8], what: &str) {
    let owned = bytes.to_vec();
    let result = std::panic::catch_unwind(move || {
        let decode_err = decode_snapshot(&owned).err();
        let inspect_err = inspect_bytes(&owned).err();
        (decode_err, inspect_err)
    });
    match result {
        Err(_) => panic!("{what}: PANICKED instead of returning a typed error"),
        Ok((decode_err, inspect_err)) => {
            assert!(decode_err.is_some(), "{what}: decode_snapshot accepted it");
            assert!(inspect_err.is_some(), "{what}: inspect_bytes accepted it");
        }
    }
}

#[test]
fn every_single_byte_flip_is_rejected() {
    let bytes = encode_snapshot(&sample_db());
    decode_snapshot(&bytes).expect("pristine snapshot decodes");
    for i in 0..bytes.len() {
        let mut mutated = bytes.clone();
        mutated[i] ^= 0xFF;
        must_fail_typed(&mutated, &format!("byte {i} flipped"));
    }
}

#[test]
fn every_single_bit_flip_in_the_header_is_rejected() {
    let bytes = encode_snapshot(&sample_db());
    for i in 0..64.min(bytes.len()) {
        for bit in 0..8 {
            let mut mutated = bytes.clone();
            mutated[i] ^= 1 << bit;
            must_fail_typed(&mutated, &format!("header byte {i} bit {bit} flipped"));
        }
    }
}

#[test]
fn every_truncation_is_rejected() {
    let bytes = encode_snapshot(&sample_db());
    for len in 0..bytes.len() {
        must_fail_typed(&bytes[..len], &format!("truncated to {len} bytes"));
    }
}

#[test]
fn appended_garbage_is_rejected() {
    let mut bytes = encode_snapshot(&sample_db());
    bytes.extend_from_slice(b"trailing junk the header never promised");
    must_fail_typed(&bytes, "bytes appended past file_len");
}

/// Patch little-endian words into a resealed copy so the mutation gets
/// past both checksums and must be caught by structural validation.
fn patched(bytes: &[u8], offset: usize, word: &[u8]) -> Vec<u8> {
    let mut out = bytes.to_vec();
    out[offset..offset + word.len()].copy_from_slice(word);
    reseal(&mut out);
    out
}

#[test]
fn resealed_structural_attacks_are_rejected_without_oom() {
    // Single relation keeps the TOC layout predictable:
    // header 0..64, then name_len u32 @64, name "R" @68, arity u32 @69,
    // rows u64 @73, data_offset u64 @81, distinct [u64; 2] @89.
    let mut db = Database::new();
    db.insert("R", &[1, 2]);
    db.insert("R", &[3, 4]);
    db.insert("R", &[5, 6]);
    let bytes = encode_snapshot(&db);
    decode_snapshot(&bytes).expect("pristine snapshot decodes");

    // relation_count = u32::MAX: must be rejected by arithmetic/bounds
    // checks, not by allocating a four-billion-entry TOC.
    must_fail_typed(
        &patched(&bytes, 16, &u32::MAX.to_le_bytes()),
        "relation_count = u32::MAX (resealed)",
    );

    // name_len far past the end of the file.
    must_fail_typed(
        &patched(&bytes, 64, &0x7FFF_FFFFu32.to_le_bytes()),
        "name_len = 2 GiB (resealed)",
    );

    // arity over MAX_ARITY — and the rows × arity product overflowing.
    must_fail_typed(
        &patched(&bytes, 69, &u32::MAX.to_le_bytes()),
        "arity = u32::MAX (resealed)",
    );

    // arity = 0 with rows = 3: the zero-size-section OOM guard (a
    // zero-arity relation holds at most one logical row).
    must_fail_typed(
        &patched(&bytes, 69, &0u32.to_le_bytes()),
        "arity = 0 with rows = 3 (resealed)",
    );

    // rows = u64::MAX: section size must be computed with checked
    // arithmetic, never allocated speculatively.
    must_fail_typed(
        &patched(&bytes, 73, &u64::MAX.to_le_bytes()),
        "rows = u64::MAX (resealed)",
    );

    // data_offset past the end of the file, and misaligned.
    must_fail_typed(
        &patched(&bytes, 81, &u64::MAX.to_le_bytes()),
        "data_offset = u64::MAX (resealed)",
    );
    let misaligned = u64::from_le_bytes(bytes[81..89].try_into().expect("8 bytes")) + 8;
    must_fail_typed(
        &patched(&bytes, 81, &misaligned.to_le_bytes()),
        "data_offset misaligned (resealed)",
    );

    // distinct count exceeding the row count.
    must_fail_typed(
        &patched(&bytes, 89, &u64::MAX.to_le_bytes()),
        "distinct > rows (resealed)",
    );

    // file_len lying about the length (shorter and longer), resealed.
    must_fail_typed(
        &patched(&bytes, 24, &64u64.to_le_bytes()),
        "file_len = header only (resealed)",
    );
    must_fail_typed(
        &patched(&bytes, 24, &u64::MAX.to_le_bytes()),
        "file_len = u64::MAX (resealed)",
    );
}

#[test]
fn version_skew_is_rejected_naming_both_versions() {
    let db = sample_db();
    let future = encode_snapshot_with(&db, FORMAT_VERSION + 1, 0);
    match decode_snapshot(&future) {
        Err(StoreError::Version { found, supported }) => {
            assert_eq!(found, FORMAT_VERSION + 1);
            assert_eq!(supported, FORMAT_VERSION);
            let message = StoreError::Version { found, supported }.to_string();
            assert!(
                message.contains("version 2") && message.contains("version 1"),
                "error must name both versions, got: {message}"
            );
        }
        other => panic!("future version accepted or mistyped: {other:?}"),
    }
    // A *flipped version byte* (without resealing) is corruption, not
    // skew: the checksum catches it before the version check runs.
    let mut flipped = encode_snapshot(&db);
    flipped[8] ^= 0xFF;
    match decode_snapshot(&flipped) {
        Err(StoreError::Corrupt { .. }) => {}
        other => panic!("flipped version byte should be Corrupt, got: {other:?}"),
    }
}

#[test]
fn reserved_flags_round_trip_untouched() {
    let db = sample_db();
    let flagged = encode_snapshot_with(&db, FORMAT_VERSION, 0xDEAD_BEEF);
    let file = decode_snapshot(&flagged).expect("unknown flags are tolerated");
    assert_eq!(file.flags, 0xDEAD_BEEF, "reserved flag bits must survive");
    assert_eq!(file.db, db, "flags must not perturb the payload");
    let summary = inspect_bytes(&flagged).expect("flagged snapshot inspects");
    assert_eq!(summary.flags, 0xDEAD_BEEF);
}

#[test]
fn io_failures_surface_as_typed_errors() {
    let missing = "/nonexistent/cqd2-no-such-dir/db.cqds";
    match cqd2::engine::store::read_snapshot(missing) {
        Err(StoreError::Io { path, .. }) => assert_eq!(path, missing),
        other => panic!("missing file should be Io, got: {other:?}"),
    }
    match cqd2::engine::store::inspect_snapshot(missing) {
        Err(StoreError::Io { .. }) => {}
        other => panic!("missing file should be Io, got: {other:?}"),
    }
}
