//! Integration tests for the `cqd2-engine` serving layer: planner
//! strategy selection, plan-cache semantics under isomorphic renaming,
//! batch execution against the end-to-end pipeline fixtures, and plan
//! persistence through the `serde` feature.

use cqd2::cq::eval::{bcq_naive, count_naive, enumerate_naive};
use cqd2::cq::generate::{canonical_query, planted_database, random_database};
use cqd2::cq::{ConjunctiveQuery, Term, Var};
use cqd2::engine::{Engine, EngineConfig, PlannerConfig, QueryPlan, Request, Workload};
use cqd2::hypergraph::generators::{hyperchain, hypercycle, random_degree_bounded};
use cqd2::jigsaw::extract::decorated_jigsaw_dual;
use cqd2::jigsaw::jigsaw;

/// An isomorphic copy of `q`: variable ids rotated by `shift`, relations
/// renamed with a `tag`. Same hypergraph structure, different names and
/// coordinates — exactly what a repeated-shape workload looks like.
fn renamed_copy(q: &ConjunctiveQuery, shift: usize, tag: &str) -> ConjunctiveQuery {
    let n = q.num_vars();
    let rot = |v: Var| Var(((v.idx() + shift) % n) as u32);
    let mut var_names = vec![String::new(); n];
    for (i, name) in q.var_names.iter().enumerate() {
        var_names[(i + shift) % n] = format!("{name}_{tag}");
    }
    let atoms = q
        .atoms
        .iter()
        .map(|a| cqd2::cq::Atom {
            relation: format!("{}_{tag}", a.relation),
            terms: a
                .terms
                .iter()
                .map(|t| match t {
                    Term::Var(v) => Term::Var(rot(*v)),
                    Term::Const(c) => Term::Const(*c),
                })
                .collect(),
        })
        .collect();
    ConjunctiveQuery { atoms, var_names }
}

/// Rename the database of `q` to match `renamed_copy(q, _, tag)`.
fn renamed_db(q: &ConjunctiveQuery, db: &cqd2::cq::Database, tag: &str) -> cqd2::cq::Database {
    let mut out = cqd2::cq::Database::new();
    for atom in &q.atoms {
        if let Some(rel) = db.relation(&atom.relation) {
            out.insert_all(&format!("{}_{tag}", atom.relation), &rel.tuples);
        }
    }
    out
}

#[test]
fn planner_routes_acyclic_queries_to_yannakakis() {
    let engine = Engine::default();
    let q = canonical_query(&hyperchain(5, 3));
    let (planned, _, _) = engine.plan(&q, Workload::Boolean);
    match planned.plan {
        QueryPlan::GhdYannakakis { width, .. } => assert_eq!(width, 1),
        other => panic!("expected width-1 Yannakakis for a chain, got {other:?}"),
    }
    let (counted, _, _) = engine.plan(&q, Workload::Count);
    assert!(matches!(counted.plan, QueryPlan::CountingDp { .. }));
}

#[test]
fn planner_routes_grid_like_degree2_queries_to_jigsaw() {
    let engine = Engine::default();
    let q = canonical_query(&jigsaw(3, 3));
    let (planned, _, _) = engine.plan(&q, Workload::Boolean);
    match &planned.plan {
        QueryPlan::JigsawReduce { n, sequence } => {
            // The fixture *is* the 3×3 jigsaw, so the verified dilution
            // sequence to it may legitimately be empty.
            assert_eq!(*n, 3);
            let _ = sequence;
        }
        other => panic!("expected a jigsaw hardness certificate, got {other:?}"),
    }
    // The certificate explains the hard regime in its notes.
    assert!(
        planned.explain().contains("jigsaw"),
        "{}",
        planned.explain()
    );
}

#[test]
fn planner_routes_wide_oversize_queries_to_naive() {
    let engine = Engine::new(EngineConfig {
        planner: PlannerConfig {
            use_heuristic_ghd: false,
            jigsaw_max_n: 0,
            ..PlannerConfig::default()
        },
        ..EngineConfig::default()
    });
    let h = random_degree_bounded(30, 3, 3, 0.4, 7);
    assert!(
        h.num_vertices() > 26,
        "fixture must exceed the exact-ghw cap"
    );
    let q = canonical_query(&h);
    let (planned, _, _) = engine.plan(&q, Workload::Boolean);
    assert!(
        matches!(planned.plan, QueryPlan::NaiveJoin),
        "got {planned:?}"
    );
}

#[test]
fn plan_cache_hits_isomorphic_renamed_queries() {
    let engine = Engine::default();
    let base = canonical_query(&hypercycle(6, 2));
    let base_db = planted_database(&base, 8, 20, 42);

    // Cold: one miss.
    assert!(engine.solve_bcq(&base, &base_db));
    let after_first = engine.cache_stats();
    assert_eq!((after_first.hits, after_first.misses), (0, 1));

    // Ten isomorphic-but-renamed copies: all hits, no new entries, and
    // answers agree with naive evaluation on the renamed databases.
    for i in 1..=10 {
        let q = renamed_copy(&base, i, &format!("v{i}"));
        let db = renamed_db(&base, &base_db, &format!("v{i}"));
        assert_eq!(engine.solve_bcq(&q, &db), bcq_naive(&q, &db));
    }
    let warm = engine.cache_stats();
    assert_eq!(warm.misses, 1, "renamings must not re-plan");
    assert_eq!(warm.hits, 10);
    assert_eq!(warm.entries, 1);

    // A structurally different query is a miss.
    let other = canonical_query(&hyperchain(6, 2));
    let other_db = random_database(&other, 5, 10, 3);
    engine.solve_bcq(&other, &other_db);
    assert_eq!(engine.cache_stats().misses, 2);
}

#[test]
fn batch_execution_matches_naive_on_pipeline_fixtures() {
    // The end-to-end pipeline fixture: a decorated degree-2 host hiding
    // a 3×3 grid in its dual, exactly as in tests/end_to_end.rs.
    let host = decorated_jigsaw_dual(3, 3, 1, 1);
    let host_q = canonical_query(&host);
    let host_db = planted_database(&host_q, 4, 6, 9);

    let cycle_q = canonical_query(&hypercycle(5, 2));
    let cycle_db = random_database(&cycle_q, 6, 14, 5);
    let chain_q = canonical_query(&hyperchain(4, 2));
    let chain_db = random_database(&chain_q, 6, 14, 6);

    let requests = vec![
        Request {
            query: &host_q,
            db: &host_db,
            workload: Workload::Boolean,
        },
        Request {
            query: &cycle_q,
            db: &cycle_db,
            workload: Workload::Boolean,
        },
        Request {
            query: &chain_q,
            db: &chain_db,
            workload: Workload::Count,
        },
        Request {
            query: &cycle_q,
            db: &cycle_db,
            workload: Workload::Count,
        },
        Request {
            query: &host_q,
            db: &host_db,
            workload: Workload::Count,
        },
        Request {
            query: &chain_q,
            db: &chain_db,
            workload: Workload::Enumerate { limit: None },
        },
    ];
    let engine = Engine::new(EngineConfig {
        workers: 3,
        ..EngineConfig::default()
    });
    let responses = engine.execute_batch(&requests);
    assert_eq!(responses.len(), requests.len());

    for (req, resp) in requests.iter().zip(&responses) {
        match req.workload {
            Workload::Boolean => assert_eq!(
                resp.answer.as_bool().unwrap(),
                bcq_naive(req.query, req.db),
                "boolean mismatch"
            ),
            Workload::Count => assert_eq!(
                resp.answer.as_count().unwrap(),
                count_naive(req.query, req.db),
                "count mismatch"
            ),
            Workload::Enumerate { .. } => {
                let mut got = resp.answer.as_tuples().expect("tuples").to_vec();
                got.sort_unstable();
                assert_eq!(got, enumerate_naive(req.query, req.db), "tuple mismatch");
            }
        }
    }
    // The planted host instance must be satisfiable, and its plan must
    // carry the Theorem 4.7 certificate.
    assert_eq!(responses[0].answer.as_bool(), Some(true));
    assert!(matches!(
        responses[0].provenance.planned.plan,
        QueryPlan::JigsawReduce { n: 3, .. }
    ));
    // Three distinct structures, six requests: three cache hits.
    let stats = engine.cache_stats();
    assert_eq!(stats.entries, 3);
    assert_eq!(stats.hits + stats.misses, 6);
    assert_eq!(stats.misses, 3);
}

#[test]
fn sessions_amortize_stats_and_prepared_queries_amortize_planning() {
    let engine = Engine::default();
    let base = canonical_query(&hypercycle(6, 2));
    let db = planted_database(&base, 8, 20, 42);
    let session = engine.session(&db);

    // Preparing ten isomorphic renamings of one structure plans once.
    let mut prepared = vec![session.prepare(&base).unwrap()];
    assert!(!prepared[0].cache_hit());
    for i in 1..=10 {
        let q = renamed_copy(&base, i, &format!("v{i}"));
        prepared.push(session.prepare(&q).unwrap());
        assert!(prepared[i].cache_hit(), "renaming {i} must hit the cache");
    }
    assert_eq!(engine.cache_stats().misses, 1);

    // Every prepared handle runs all workloads with zero planning and
    // answers that match the independent evaluators. (The renamed
    // queries run against the *base* database on purpose: their renamed
    // relations are absent, so they exercise the empty-relation path.)
    let resp = prepared[0].run(Workload::Boolean);
    assert_eq!(resp.answer.as_bool(), Some(true));
    assert_eq!(resp.provenance.planning, std::time::Duration::ZERO);
    let count = prepared[0].run(Workload::Count);
    assert_eq!(count.answer.as_count(), Some(count_naive(&base, &db)));
    let mut tuples = prepared[0]
        .run(Workload::Enumerate { limit: None })
        .answer
        .into_tuples()
        .unwrap();
    tuples.sort_unstable();
    assert_eq!(tuples, enumerate_naive(&base, &db));
    for p in &prepared[1..] {
        assert_eq!(p.run(Workload::Boolean).answer.as_bool(), Some(false));
    }
}

#[test]
fn prepared_cursor_streams_enumeration_answers() {
    let engine = Engine::default();
    let q = canonical_query(&hyperchain(4, 2));
    let db = planted_database(&q, 7, 25, 17);
    let session = engine.session(&db);
    let prepared = session.prepare(&q).unwrap();
    let expected = enumerate_naive(&q, &db);
    // Unlimited cursor covers the whole answer set.
    let mut streamed: Vec<_> = prepared.cursor(None).collect();
    streamed.sort_unstable();
    assert_eq!(streamed, expected);
    // A limit caps the stream; Workload::Enumerate agrees.
    let capped: Vec<_> = prepared.cursor(Some(3)).collect();
    assert_eq!(capped.len(), expected.len().min(3));
    let resp = prepared.run(Workload::Enumerate { limit: Some(3) });
    assert_eq!(resp.answer.as_tuples().map(<[_]>::len), Some(capped.len()));
}

#[test]
fn stats_flip_small_data_plans_to_naive_join() {
    let engine = Engine::default();
    let q = canonical_query(&hypercycle(6, 2));
    // Structure alone says GHD (width 2 beats exponent 6)…
    let (structural, _, _) = engine.plan(&q, Workload::Boolean);
    assert!(
        matches!(structural.plan, QueryPlan::GhdYannakakis { .. }),
        "got {structural:?}"
    );
    assert!(structural.cost.data.is_none());
    // …but on a tiny database the per-bag setup charges dominate, and
    // the statistics flip the plan to the naive join.
    let small_db = random_database(&q, 3, 2, 5);
    let (planned, _, _) = engine.plan_with_db(&q, &small_db, Workload::Boolean);
    assert!(
        matches!(planned.plan, QueryPlan::NaiveJoin),
        "small data must plan naive, got {planned:?}"
    );
    let est = planned.cost.data.expect("estimate recorded in provenance");
    assert_eq!(est.naive_beats_ghd(), Some(true), "{est:?}");
    assert_eq!(est.db_tuples, small_db.size());
    assert!(
        planned.explain().contains("stats:"),
        "--explain must surface the estimate:\n{}",
        planned.explain()
    );
    // Counting flips the same way, and serving executes the flipped
    // plan with correct answers.
    let (counted, _, _) = engine.plan_with_db(&q, &small_db, Workload::Count);
    assert!(matches!(counted.plan, QueryPlan::NaiveJoin), "{counted:?}");
    let resp = engine.serve(&Request {
        query: &q,
        db: &small_db,
        workload: Workload::Boolean,
    });
    assert_eq!(resp.provenance.planned.plan.strategy(), "naive-join");
    assert_eq!(resp.answer.as_bool().unwrap(), bcq_naive(&q, &small_db));
    // On a large database the ‖D‖^6 naive product explodes and the GHD
    // route stays chosen — the crossover goes both ways.
    let big_db = random_database(&q, 500, 400, 6);
    let (planned, _, _) = engine.plan_with_db(&q, &big_db, Workload::Boolean);
    assert!(
        matches!(planned.plan, QueryPlan::GhdYannakakis { .. }),
        "large data must keep the GHD, got {:?}",
        planned.plan.strategy()
    );
    assert_eq!(
        planned.cost.data.unwrap().naive_beats_ghd(),
        Some(false),
        "{planned:?}"
    );
}

#[test]
fn facade_delegates_to_shared_engine() {
    let q = canonical_query(&hypercycle(4, 2));
    let db = planted_database(&q, 5, 9, 11);
    assert_eq!(cqd2::solve_bcq(&q, &db), bcq_naive(&q, &db));
    assert_eq!(cqd2::count_answers(&q, &db), count_naive(&q, &db));
    // The shared engine now knows this structure class.
    let before = Engine::shared().cache_stats();
    cqd2::solve_bcq(&q, &db);
    let after = Engine::shared().cache_stats();
    assert_eq!(after.hits, before.hits + 1);
    assert_eq!(after.misses, before.misses);
}

#[test]
fn plans_roundtrip_through_json() {
    let engine = Engine::default();
    for h in [hyperchain(4, 2), hypercycle(5, 2), jigsaw(2, 3)] {
        let q = canonical_query(&h);
        let (planned, _, _) = engine.plan(&q, Workload::Boolean);
        let json = serde::json::to_string_pretty(&planned);
        let back: cqd2::engine::PlannedQuery = serde::json::from_str(&json).unwrap();
        assert_eq!(back, planned, "plan JSON roundtrip for {}", q.display());
        // Stats-refined plans carry a DataEstimate; it must roundtrip too.
        let db = random_database(&q, 6, 10, 3);
        let (planned, _, _) = engine.plan_with_db(&q, &db, Workload::Boolean);
        assert!(planned.cost.data.is_some());
        let json = serde::json::to_string_pretty(&planned);
        let back: cqd2::engine::PlannedQuery = serde::json::from_str(&json).unwrap();
        assert_eq!(
            back,
            planned,
            "stats plan JSON roundtrip for {}",
            q.display()
        );
    }
}

#[test]
fn catalog_reload_under_load_pins_inflight_enumeration() {
    // Engine-level acceptance scenario for the versioned catalog: an
    // in-flight enumeration pinned to epoch 0 completes with the old
    // data's answers while a swap publishes epoch 1, and a session
    // opened afterwards observes the new data — with the plan cache
    // shared across both epochs (the structure didn't change).
    use cqd2::engine::Catalog;

    let q = canonical_query(&hyperchain(3, 2));
    let old_db = planted_database(&q, 6, 30, 21);
    let old_tuples = enumerate_naive(&q, &old_db);
    let old_count = count_naive(&q, &old_db);
    assert!(!old_tuples.is_empty());
    let new_db = planted_database(&q, 5, 12, 22);
    let new_count = count_naive(&q, &new_db);

    let engine = Engine::default();
    let catalog = Catalog::new();
    catalog.publish("hot", old_db.clone()).expect("publish");

    let old_session = engine.session_in(&catalog, "hot").expect("session");
    let old_prepared = old_session.prepare(&q).expect("prepare");
    let mut in_flight = old_prepared.cursor(None);
    // Consume one answer: the cursor is genuinely mid-stream.
    let first = in_flight.next().expect("at least one answer");

    // Hot reload on another thread (the swap is atomic; the join makes
    // the ordering deterministic for the assertions below).
    std::thread::scope(|s| {
        s.spawn(|| {
            catalog.swap("hot", new_db.clone()).expect("swap");
        });
    });
    assert_eq!(catalog.snapshot("hot").unwrap().epoch(), 1);

    // The in-flight cursor and the pinned handle finish on old data.
    let mut streamed = vec![first];
    streamed.extend(&mut in_flight);
    streamed.sort_unstable();
    assert_eq!(streamed, old_tuples, "in-flight cursor pinned to epoch 0");
    assert_eq!(
        old_prepared.run(Workload::Count).answer.as_count(),
        Some(old_count)
    );

    // A fresh catalog session observes epoch 1 and the new answers.
    let new_session = engine.session_in(&catalog, "hot").expect("session");
    assert_eq!(new_session.epoch(), 1);
    let new_prepared = new_session.prepare(&q).expect("prepare");
    assert_eq!(
        new_prepared.run(Workload::Count).answer.as_count(),
        Some(new_count)
    );
    // Same structure class: the second prepare hit the plan cache.
    assert!(new_prepared.cache_hit());
}
