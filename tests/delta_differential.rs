//! Differential tests for the incremental update plane: random
//! insert/delete streams applied through the delta path must be
//! indistinguishable from rebuilding the database from scratch.
//!
//! Three layers of checking:
//!
//! 1. **Kernel level** (randomized via the vendored proptest): a stream
//!    of `@insert`/`@delete` batches applied with
//!    [`Catalog::apply_delta`] must converge to exactly the database a
//!    from-scratch rebuild produces — equal as a value, **bit-identical
//!    [`FlatRelation`] buffers** per relation, and equal statistics
//!    (the stitched [`DatabaseStats::updated_for`] path vs a full
//!    stats pass). Untouched relations must be carried by `Arc`
//!    (pointer equality), and the touched list must name exactly the
//!    relations whose contents changed.
//! 2. **Answer level**: Boolean / Count / Enumerate on the delta'd
//!    database agree with the naive evaluator on the rebuilt one, with
//!    the GHD route exercised on the delta side.
//! 3. **Epoch level**: open [`AnswerCursor`]s stay pinned to their
//!    pre-delta epoch — they keep streaming the old answers after the
//!    catalog publishes the delta — while warm-rebased handles see the
//!    new epoch.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use cqd2::cq::eval::{bcq_naive, count_naive, count_via_ghd, enumerate_naive};
use cqd2::cq::generate::{canonical_query, planted_database};
use cqd2::cq::{ConjunctiveQuery, Database, DatabaseDelta, FlatRelation, Var};
use cqd2::decomp::widths::ghw_decomposition;
use cqd2::engine::{Catalog, Engine, MaintenanceClass, Workload};
use cqd2::hypergraph::generators::hyperchain;
use proptest::prelude::*;

/// One random fact-level operation: (is_insert, on_R (else S), tuple).
type Op = (bool, bool, Vec<u64>);

/// Apply one batch to the model with the kernel's documented
/// semantics: `after = (before ∪ inserts) \ deletes` — deletes win
/// over inserts of the same tuple regardless of order in the batch.
fn model_batch(model: &mut BTreeMap<String, BTreeSet<Vec<u64>>>, batch: &[Op]) {
    for &(is_insert, on_r, ref tuple) in batch {
        let rel = model
            .get_mut(if on_r { "R" } else { "S" })
            .expect("model has both relations");
        if is_insert {
            rel.insert(tuple.clone());
        }
    }
    for &(is_insert, on_r, ref tuple) in batch {
        let rel = model
            .get_mut(if on_r { "R" } else { "S" })
            .expect("model has both relations");
        if !is_insert {
            rel.remove(tuple);
        }
    }
}

/// Build a fresh database from the model's final tuple sets.
fn rebuild(model: &BTreeMap<String, BTreeSet<Vec<u64>>>) -> Database {
    let mut db = Database::new();
    for (name, tuples) in model {
        let rows: Vec<Vec<u64>> = tuples.iter().cloned().collect();
        db.insert_all(name, &rows);
        if rows.is_empty() {
            // insert_all of nothing does not declare the relation;
            // deltas can empty a relation but never drop its schema.
            db.insert_sorted_relation(name, 2, vec![]).unwrap();
        }
    }
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn delta_stream_matches_from_scratch_rebuild(
        base_r in collection::vec(collection::vec(0u64..8, 2..3), 1..24),
        base_s in collection::vec(collection::vec(0u64..8, 2..3), 1..24),
        ops in collection::vec(
            (any::<bool>(), any::<bool>(), collection::vec(0u64..8, 2..3)),
            0..64,
        ),
        batch_size in 1usize..8,
    ) {
        let mut base = Database::new();
        base.insert_all("R", &base_r);
        base.insert_all("S", &base_s);
        let mut model: BTreeMap<String, BTreeSet<Vec<u64>>> = BTreeMap::new();
        for name in ["R", "S"] {
            model.insert(
                name.to_string(),
                base.relation(name).unwrap().tuples.iter().cloned().collect(),
            );
        }

        let catalog = Catalog::new();
        catalog.publish("stream", base).unwrap();
        let mut epoch = 0u64;
        for batch in ops.chunks(batch_size) {
            let mut delta = DatabaseDelta::new();
            for &(is_insert, on_r, ref tuple) in batch {
                let rel = if on_r { "R" } else { "S" };
                if is_insert {
                    delta.insert(rel, tuple.clone());
                } else {
                    delta.delete(rel, tuple.clone());
                }
            }
            let before = model.clone();
            model_batch(&mut model, batch);
            let out = catalog.apply_delta("stream", &delta).unwrap();
            epoch += 1;
            prop_assert_eq!(out.snapshot.epoch(), epoch);
            // `touched` names exactly the relations whose contents
            // changed; everything else rides along as the same Arc.
            for name in ["R", "S"] {
                let changed = before[name] != model[name];
                prop_assert!(
                    out.touched.contains(&name.to_string()) == changed,
                    "touched mismatch for {} at epoch {}", name, epoch
                );
                let shared = Arc::ptr_eq(
                    out.previous.db().relation_arc(name).unwrap(),
                    out.snapshot.db().relation_arc(name).unwrap(),
                );
                prop_assert!(
                    shared != changed,
                    "Arc sharing mismatch for {} at epoch {}", name, epoch
                );
            }
        }

        let live = catalog.snapshot("stream").unwrap();
        let rebuilt = rebuild(&model);
        // Value equality, bit-identical flat buffers, equal statistics.
        prop_assert_eq!(live.db(), &rebuilt);
        let vars = vec![Var(0), Var(1)];
        for name in ["R", "S"] {
            let via_delta =
                FlatRelation::from_rows(vars.clone(), &live.db().relation(name).unwrap().tuples);
            let scratch =
                FlatRelation::from_rows(vars.clone(), &rebuilt.relation(name).unwrap().tuples);
            prop_assert!(
                via_delta.data() == scratch.data(),
                "flat buffer of {} differs between delta and rebuild", name
            );
        }
        prop_assert_eq!(live.stats(), &rebuilt.stats());

        // Answers: naive on both sides, plus the GHD route on the
        // delta'd side against naive on the rebuilt side.
        let q = ConjunctiveQuery::parse(&[("R", &["?x", "?y"]), ("S", &["?y", "?z"])]);
        prop_assert_eq!(count_naive(&q, live.db()), count_naive(&q, &rebuilt));
        prop_assert_eq!(bcq_naive(&q, live.db()), bcq_naive(&q, &rebuilt));
        prop_assert_eq!(enumerate_naive(&q, live.db()), enumerate_naive(&q, &rebuilt));
        let ghd = ghw_decomposition(&q.hypergraph()).expect("chain decomposes");
        prop_assert_eq!(
            count_via_ghd(&q, live.db(), &ghd).unwrap(),
            count_naive(&q, &rebuilt)
        );
    }
}

#[test]
fn open_cursors_stay_pinned_to_pre_delta_epochs() {
    for seed in 0..4u64 {
        let q = canonical_query(&hyperchain(3, 2));
        let db = planted_database(&q, 60, 400, seed);
        let catalog = Catalog::new();
        catalog.publish("hot", db).unwrap();
        let engine = Engine::default();

        let prepared = engine
            .session_in(&catalog, "hot")
            .unwrap()
            .prepare(&q)
            .unwrap();
        let pre = enumerate_naive(&q, catalog.snapshot("hot").unwrap().db());
        assert!(!pre.is_empty(), "planted database has answers");
        // A cursor opened before the delta…
        let early_cursor = prepared.cursor(None);

        // Graft a fresh R2 edge onto an existing answer's ?v2 value:
        // guaranteed new answers (999999 is outside the planted domain).
        let c = pre[0][2];
        let mut delta = DatabaseDelta::new();
        delta.insert("R2", vec![c, 999_999]);
        let outcome = catalog.apply_delta("hot", &delta).unwrap();
        assert_eq!(outcome.snapshot.epoch(), 1);
        assert_eq!(outcome.touched, vec!["R2".to_string()]);
        let post = enumerate_naive(&q, outcome.snapshot.db());
        assert!(post.len() > pre.len(), "grafted edge adds answers");

        // …and a cursor opened from the old handle after the delta
        // both stream the pre-delta epoch's answers.
        let late_cursor = prepared.cursor(None);
        let mut early: Vec<Vec<u64>> = early_cursor.collect();
        early.sort_unstable();
        assert_eq!(early, pre, "seed {seed}: early cursor drifted");
        let mut late: Vec<Vec<u64>> = late_cursor.collect();
        late.sort_unstable();
        assert_eq!(late, pre, "seed {seed}: late cursor drifted");
        // The old handle itself still answers at its pinned epoch.
        assert_eq!(
            prepared.run(Workload::Count).answer.as_count(),
            Some(pre.len() as u128)
        );

        // A warm rebase migrates to the new epoch: only dirty bags are
        // rewritten, and its answers are the post-delta set.
        let (warm, pass) = prepared
            .rebase(&outcome.snapshot, &outcome.touched)
            .expect("GHD handle rebases warm");
        assert!(pass.rewritten >= 1, "seed {seed}: delta rewrote a bag");
        assert!(
            pass.rewritten < pass.total,
            "seed {seed}: clean bags were carried, not rebuilt"
        );
        assert_eq!(warm.maintenance(), Some(MaintenanceClass::WarmOverlay));
        let mut warm_answers: Vec<Vec<u64>> = warm.cursor(None).collect();
        warm_answers.sort_unstable();
        assert_eq!(warm_answers, post, "seed {seed}: warm handle answers");

        // The pre-delta cursor is self-contained: dropping the handle
        // it came from does not disturb an in-flight stream.
        let survivor = prepared.cursor(None);
        drop(prepared);
        let mut survived: Vec<Vec<u64>> = survivor.collect();
        survived.sort_unstable();
        assert_eq!(survived, pre, "seed {seed}: cursor outlives its handle");
    }
}
