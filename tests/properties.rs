//! Property-based tests (proptest) on the core invariants:
//! Lemma 3.2 along random dilution sequences, reduction parsimony
//! (Theorems 3.4/4.15) on random instances, and evaluator agreement.

use cqd2::cq::Database;
use cqd2::dilution::ops::check_step_invariants;
use cqd2::dilution::{DilutionOp, DilutionSequence};
use cqd2::hypergraph::generators::random_degree_bounded;
use cqd2::hypergraph::{Hypergraph, VertexId};
use cqd2::reduction::{reduce_along, verify_reduction, Instance};
use proptest::prelude::*;

/// Build a random hypergraph from a seed (deterministic per seed).
fn hypergraph_from_seed(seed: u64, max_degree: usize) -> Hypergraph {
    random_degree_bounded(6, 3, max_degree, 0.6, seed)
}

/// Apply `steps` pseudo-random applicable dilution ops, returning the
/// sequence actually applied.
fn random_dilution(h: &Hypergraph, choices: &[u8]) -> DilutionSequence {
    let mut cur = h.clone();
    let mut ops = Vec::new();
    for &c in choices {
        if cur.num_vertices() == 0 {
            break;
        }
        let v = VertexId(u32::from(c) % cur.num_vertices() as u32);
        let op = if c % 2 == 0 {
            DilutionOp::DeleteVertex(v)
        } else {
            DilutionOp::MergeOnVertex(v)
        };
        if !op.is_applicable(&cur) {
            continue;
        }
        let (next, _) = op.apply(&cur).expect("applicable");
        ops.push(op);
        cur = next;
    }
    DilutionSequence { ops }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn lemma_3_2_invariants_hold(seed in 0u64..500, choices in proptest::collection::vec(any::<u8>(), 0..6)) {
        let h = hypergraph_from_seed(seed, 3);
        let seq = random_dilution(&h, &choices);
        let run = seq.run(&h).unwrap();
        for w in run.hypergraphs.windows(2) {
            check_step_invariants(&w[0], &w[1]).unwrap();
        }
    }

    #[test]
    fn reduction_is_parsimonious(seed in 0u64..200, choices in proptest::collection::vec(any::<u8>(), 1..4)) {
        let h = hypergraph_from_seed(seed, 2);
        let seq = random_dilution(&h, &choices);
        let m = seq.apply(&h).unwrap();
        // Skip degenerate results (no edges -> no atoms to query).
        prop_assume!(m.num_edges() > 0 && m.num_vertices() > 0);
        prop_assume!(m.edge_ids().all(|e| !m.edge(e).is_empty()));
        let proto = Instance::canonical(&m, Database::new(), "Q");
        let db = cqd2::cq::generate::random_database(&proto.query, 3, 6, seed);
        let inst = Instance::canonical(&m, db, "Q");
        let report = reduce_along(&h, &seq, &inst).unwrap();
        verify_reduction(&inst, &report).unwrap();
    }

    #[test]
    fn evaluators_agree(seed in 0u64..200) {
        let h = hypergraph_from_seed(seed, 2);
        prop_assume!(h.num_edges() > 0);
        let q = cqd2::cq::generate::canonical_query(&h);
        let db = cqd2::cq::generate::random_database(&q, 4, 10, seed);
        let naive = cqd2::cq::eval::bcq_naive(&q, &db);
        let auto = cqd2::solve_bcq(&q, &db);
        prop_assert_eq!(naive, auto);
        let cn = cqd2::cq::eval::count_naive(&q, &db);
        let ca = cqd2::count_answers(&q, &db);
        prop_assert_eq!(cn, ca);
    }

    #[test]
    fn ghw_is_isomorphism_invariant(seed in 0u64..100) {
        use cqd2::decomp::widths::ghw_exact;
        let h = hypergraph_from_seed(seed, 2);
        prop_assume!(h.num_edges() > 0);
        // Relabel vertices by reversing ids.
        let n = h.num_vertices() as u32;
        let edges: Vec<Vec<u32>> = h
            .edge_ids()
            .map(|e| h.edge(e).iter().map(|v| n - 1 - v.0).collect())
            .collect();
        let relabeled = Hypergraph::new(n as usize, &edges).unwrap();
        prop_assert!(cqd2::hypergraph::are_isomorphic(&h, &relabeled));
        prop_assert_eq!(ghw_exact(&h), ghw_exact(&relabeled));
    }

    #[test]
    fn dual_of_dual_is_identity_on_reduced(seed in 0u64..100) {
        use cqd2::hypergraph::{dual, reduce};
        let h = hypergraph_from_seed(seed, 3);
        let (r, _) = reduce::reduce(&h);
        prop_assume!(r.num_vertices() > 0);
        let (d, _) = dual(&r);
        let (dd, _) = dual(&d);
        prop_assert!(cqd2::hypergraph::are_isomorphic(&r, &dd));
    }

    #[test]
    fn reduction_sequence_reaches_reduced_form(seed in 0u64..200) {
        use cqd2::dilution::reduce_seq::reduction_sequence;
        use cqd2::hypergraph::reduce::is_reduced;
        let h = hypergraph_from_seed(seed, 3);
        prop_assume!(h.edge_ids().any(|e| !h.edge(e).is_empty()));
        let seq = reduction_sequence(&h).unwrap();
        let out = seq.apply(&h).unwrap();
        prop_assert!(is_reduced(&out) || out.num_edges() == 0);
    }
}
