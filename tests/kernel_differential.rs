//! Differential tests: the columnar [`FlatRelation`] kernel against the
//! reference row store [`VRelation`] and the naive evaluator.
//!
//! Two layers of checking:
//!
//! 1. **Operator level** (randomized via the vendored proptest): join /
//!    semijoin / project / bind must produce exactly the same tuple sets
//!    as the reference implementation, including multi-column keys,
//!    reordered schemas, disjoint schemas, and empty inputs.
//! 2. **Evaluator level** (seeded loops): the GHD route (which runs
//!    entirely on the flat kernel) must agree with the naive backtracker
//!    and with a reference full join computed on the row store, across
//!    `hyperchain` / `hypercycle` / `planted_database` instances,
//!    constants, repeated variables, and empty-relation edge cases.

use cqd2::cq::eval::{
    bcq_naive, bcq_via_ghd, count_naive, count_via_ghd, enumerate_naive, enumerate_via_ghd,
};
use cqd2::cq::generate::{canonical_query, planted_database, random_database};
use cqd2::cq::{ConjunctiveQuery, Database, FlatRelation, VRelation, Var};
use cqd2::decomp::widths::ghw_decomposition;
use cqd2::hypergraph::generators::{hyperchain, hypercycle};
use proptest::prelude::*;

/// Build both representations from the same raw tuples.
fn both(vars: &[u32], tuples: &[Vec<u64>]) -> (VRelation, FlatRelation) {
    let vs: Vec<Var> = vars.iter().map(|&i| Var(i)).collect();
    let mut v = VRelation {
        vars: vs.clone(),
        tuples: tuples.to_vec(),
    };
    v.dedup();
    let f = FlatRelation::from_rows(vs, tuples);
    (v, f)
}

/// Canonical tuple set of a flat relation for comparisons.
fn flat_tuples(f: &FlatRelation) -> Vec<Vec<u64>> {
    let mut t = f.to_tuples();
    t.sort_unstable();
    t
}

/// Canonical tuple set of a row-store relation (dedup sorts in place).
fn vrel_tuples(v: &VRelation) -> Vec<Vec<u64>> {
    let mut t = v.tuples.clone();
    t.sort_unstable();
    t
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn join_single_shared_column_matches_reference(
        a in collection::vec(collection::vec(0u64..6, 2..3), 0..32),
        b in collection::vec(collection::vec(0u64..6, 2..3), 0..32),
    ) {
        let (va, fa) = both(&[0, 1], &a);
        let (vb, fb) = both(&[1, 2], &b);
        prop_assert_eq!(flat_tuples(&fa.join(&fb)), vrel_tuples(&va.join(&vb)));
    }

    #[test]
    fn join_multi_column_reordered_key_matches_reference(
        a in collection::vec(collection::vec(0u64..4, 3..4), 0..24),
        b in collection::vec(collection::vec(0u64..4, 3..4), 0..24),
    ) {
        // Shares {0, 1}, but in swapped column order on the right side.
        let (va, fa) = both(&[0, 1, 2], &a);
        let (vb, fb) = both(&[1, 0, 3], &b);
        prop_assert_eq!(flat_tuples(&fa.join(&fb)), vrel_tuples(&va.join(&vb)));
    }

    #[test]
    fn join_disjoint_schemas_matches_reference(
        a in collection::vec(collection::vec(0u64..5, 1..2), 0..12),
        b in collection::vec(collection::vec(0u64..5, 2..3), 0..12),
    ) {
        let (va, fa) = both(&[0], &a);
        let (vb, fb) = both(&[5, 6], &b);
        prop_assert_eq!(flat_tuples(&fa.join(&fb)), vrel_tuples(&va.join(&vb)));
    }

    #[test]
    fn semijoin_matches_reference(
        a in collection::vec(collection::vec(0u64..5, 2..3), 0..32),
        b in collection::vec(collection::vec(0u64..5, 2..3), 0..32),
    ) {
        let (va, fa) = both(&[0, 1], &a);
        // Single shared column.
        let (vb1, fb1) = both(&[1, 7], &b);
        prop_assert_eq!(flat_tuples(&fa.semijoin(&fb1)), vrel_tuples(&va.semijoin(&vb1)));
        // Both columns shared, reordered.
        let (vb2, fb2) = both(&[1, 0], &b);
        prop_assert_eq!(flat_tuples(&fa.semijoin(&fb2)), vrel_tuples(&va.semijoin(&vb2)));
        // Disjoint (empty vs nonempty other handled inside).
        let (vb3, fb3) = both(&[8, 9], &b);
        prop_assert_eq!(flat_tuples(&fa.semijoin(&fb3)), vrel_tuples(&va.semijoin(&vb3)));
    }

    #[test]
    fn project_matches_reference(
        a in collection::vec(collection::vec(0u64..4, 3..4), 0..32),
    ) {
        let (va, fa) = both(&[0, 1, 2], &a);
        for keep in [vec![0u32], vec![0, 1], vec![2, 0], vec![1], vec![0, 1, 2], vec![2, 1, 0]] {
            let kv: Vec<Var> = keep.iter().map(|&i| Var(i)).collect();
            prop_assert_eq!(flat_tuples(&fa.project(&kv)), vrel_tuples(&va.project(&kv)));
        }
    }

    #[test]
    fn bind_matches_reference_on_constants_and_repeats(
        tuples in collection::vec(collection::vec(0u64..4, 3..4), 0..40),
    ) {
        let mut db = Database::new();
        db.insert_all("R", &tuples);
        for q in [
            ConjunctiveQuery::parse(&[("R", &["?x", "?y", "?z"])]),
            ConjunctiveQuery::parse(&[("R", &["?x", "?x", "?y"])]),
            ConjunctiveQuery::parse(&[("R", &["?x", "?y", "2"])]),
            ConjunctiveQuery::parse(&[("R", &["?x", "?x", "?x"])]),
            ConjunctiveQuery::parse(&[("R", &["1", "?x", "3"])]),
        ] {
            let v = VRelation::bind(&q.atoms[0], &db);
            let f = FlatRelation::bind(&q.atoms[0], &db);
            prop_assert_eq!(f.vars(), v.vars.as_slice());
            prop_assert_eq!(flat_tuples(&f), vrel_tuples(&v));
        }
    }
}

/// Reference answer count: bind and join every atom on the row store.
/// For full CQs whose variables all occur in atoms, the join rows are
/// exactly the solutions.
fn reference_count(q: &ConjunctiveQuery, db: &Database) -> u128 {
    let mut joined = VRelation::unit();
    for atom in &q.atoms {
        joined = joined.join(&VRelation::bind(atom, db));
    }
    joined.tuples.len() as u128
}

/// Collected-and-sorted view of the streaming GHD enumerator.
fn enumerate_ghd_sorted(
    q: &ConjunctiveQuery,
    db: &Database,
    ghd: &cqd2::decomp::Ghd,
) -> Vec<Vec<u64>> {
    let mut out: Vec<Vec<u64>> = enumerate_via_ghd(q, db, ghd)
        .expect("ghd fits its own query")
        .collect();
    out.sort_unstable();
    out
}

#[test]
fn ghd_enumeration_agrees_with_naive_on_randomized_instances() {
    for seed in 0..12u64 {
        let h = match seed % 3 {
            0 => hyperchain(4, 2),
            1 => hypercycle(5, 2),
            _ => hyperchain(3, 3),
        };
        let q = canonical_query(&h);
        let db = if seed % 2 == 0 {
            planted_database(&q, 6, 14, seed)
        } else {
            random_database(&q, 5, 12, seed)
        };
        let ghd = ghw_decomposition(&q.hypergraph()).expect("fixture decomposes");
        let expected = enumerate_naive(&q, &db);
        assert_eq!(
            enumerate_ghd_sorted(&q, &db, &ghd),
            expected,
            "enumeration mismatch on seed {seed}"
        );
        // The stream is duplicate-free and exactly |q(D)| long.
        assert_eq!(
            expected.len() as u128,
            count_via_ghd(&q, &db, &ghd).unwrap()
        );
    }
}

#[test]
fn ghd_enumeration_agrees_on_empty_results() {
    let q = canonical_query(&hyperchain(3, 2));
    let ghd = ghw_decomposition(&q.hypergraph()).expect("decomposes");
    // Entirely empty database.
    let empty = Database::new();
    assert_eq!(
        enumerate_ghd_sorted(&q, &empty, &ghd),
        enumerate_naive(&q, &empty)
    );
    // Relations populated but joining to nothing (disjoint value ranges).
    let mut disjoint = Database::new();
    disjoint.insert_all("R0", &[vec![1, 2], vec![3, 4]]);
    disjoint.insert_all("R1", &[vec![10, 11], vec![12, 13]]);
    disjoint.insert_all("R2", &[vec![20, 21]]);
    assert_eq!(
        enumerate_ghd_sorted(&q, &disjoint, &ghd),
        Vec::<Vec<u64>>::new()
    );
    assert_eq!(enumerate_naive(&q, &disjoint), Vec::<Vec<u64>>::new());
}

#[test]
fn ghd_enumeration_agrees_on_duplicate_heavy_databases() {
    // Tiny active domains make every relation duplicate-heavy once the
    // random generator collides; repeated variables and constants add
    // the bind-time dedup paths on top.
    for seed in 0..6u64 {
        let q = canonical_query(&hypercycle(4, 2));
        let db = random_database(&q, 2, 40, seed);
        let ghd = ghw_decomposition(&q.hypergraph()).expect("decomposes");
        assert_eq!(
            enumerate_ghd_sorted(&q, &db, &ghd),
            enumerate_naive(&q, &db),
            "duplicate-heavy mismatch on seed {seed}"
        );
    }
    let q = ConjunctiveQuery::parse(&[("R", &["?x", "?x", "5"]), ("S", &["?x", "?y"])]);
    for seed in 6..10u64 {
        let mut db = random_database(&q, 3, 30, seed);
        db.insert("R", &[1, 1, 5]);
        db.insert("S", &[1, 9]);
        let ghd = ghw_decomposition(&q.hypergraph()).expect("decomposes");
        assert_eq!(
            enumerate_ghd_sorted(&q, &db, &ghd),
            enumerate_naive(&q, &db),
            "constants/repeats mismatch on seed {seed}"
        );
    }
}

#[test]
fn ghd_route_agrees_with_naive_and_reference_on_generated_instances() {
    for seed in 0..10u64 {
        let h = match seed % 3 {
            0 => hyperchain(4, 2),
            1 => hypercycle(5, 2),
            _ => hyperchain(3, 3),
        };
        let q = canonical_query(&h);
        let db = if seed % 2 == 0 {
            planted_database(&q, 6, 14, seed)
        } else {
            random_database(&q, 5, 12, seed)
        };
        let ghd = ghw_decomposition(&q.hypergraph()).expect("fixture decomposes");
        let expected = reference_count(&q, &db);
        assert_eq!(
            count_via_ghd(&q, &db, &ghd).unwrap(),
            expected,
            "count mismatch on seed {seed}"
        );
        assert_eq!(
            count_naive(&q, &db),
            expected,
            "naive count mismatch on seed {seed}"
        );
        assert_eq!(
            bcq_via_ghd(&q, &db, &ghd).unwrap(),
            expected > 0,
            "bcq mismatch on seed {seed}"
        );
        assert_eq!(
            enumerate_naive(&q, &db).len() as u128,
            expected,
            "enumeration mismatch on seed {seed}"
        );
    }
}

#[test]
fn ghd_route_agrees_on_constants_and_repeated_variables() {
    // x occurs twice in one atom, a constant pins a column, and the two
    // atoms chain on x.
    let q = ConjunctiveQuery::parse(&[("R", &["?x", "?x", "5"]), ("S", &["?x", "?y"])]);
    for seed in 0..6u64 {
        let mut db = random_database(&q, 4, 20, seed);
        // Make sure constant-5 tuples exist at all.
        db.insert("R", &[1, 1, 5]);
        db.insert("S", &[1, 9]);
        let ghd = ghw_decomposition(&q.hypergraph()).expect("decomposes");
        assert_eq!(
            count_via_ghd(&q, &db, &ghd).unwrap(),
            count_naive(&q, &db),
            "seed {seed}"
        );
        assert_eq!(
            bcq_via_ghd(&q, &db, &ghd).unwrap(),
            bcq_naive(&q, &db),
            "seed {seed}"
        );
    }
}

#[test]
fn ghd_route_agrees_on_empty_and_missing_relations() {
    let q = canonical_query(&hyperchain(3, 2));
    let ghd = ghw_decomposition(&q.hypergraph()).expect("decomposes");
    // Entirely empty database: every relation missing.
    let empty = Database::new();
    assert!(!bcq_via_ghd(&q, &empty, &ghd).unwrap());
    assert_eq!(count_via_ghd(&q, &empty, &ghd).unwrap(), 0);
    assert!(!bcq_naive(&q, &empty));
    // One relation present, the others missing.
    let mut partial = Database::new();
    partial.insert("R0", &[1, 2]);
    assert!(!bcq_via_ghd(&q, &partial, &ghd).unwrap());
    assert_eq!(count_via_ghd(&q, &partial, &ghd).unwrap(), 0);
    assert_eq!(count_naive(&q, &partial), 0);
}
