//! Round-trip property tests for the `.cqds` snapshot store
//! (`cqd2::engine::store`, format in `docs/SNAPSHOT.md`).
//!
//! The contract under test: for *any* database — empty relations,
//! duplicate-heavy inserts, wide and narrow arities, `u64` extremes —
//! `encode_snapshot` → `decode_snapshot` reproduces
//!
//! 1. the database **bit-identically** at the kernel level (the
//!    persisted column sections equal the `FlatRelation` buffers the
//!    evaluator would build from the loaded tuples),
//! 2. the statistics exactly as a fresh stats pass would compute them
//!    (so the publish-time stats skip is sound), and
//! 3. the same answers to queries as both the original database and a
//!    text (`render_database`/`parse_database`) round-trip of it.

use cqd2::cq::eval::{count_naive, enumerate_naive};
use cqd2::cq::generate::{canonical_query, planted_database};
use cqd2::cq::{Database, FlatRelation, Var};
use cqd2::engine::store::{
    decode_snapshot, encode_snapshot, inspect_bytes, read_snapshot, write_snapshot,
};
use cqd2::engine::textio::{parse_database, render_database};
use cqd2::hypergraph::generators::{hyperchain, hypercycle};

/// xorshift64* — deterministic, dependency-free test randomness.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.wrapping_mul(2685821657736338717).max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(2685821657736338717)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// One random constant, biased toward collisions (duplicate-heavy
/// relations) and toward the `u64` extremes the fixed-width columns
/// must carry losslessly.
fn random_value(rng: &mut Rng) -> u64 {
    match rng.below(10) {
        0 => 0,
        1 => u64::MAX,
        2 => u64::MAX - 1,
        3 => 1 << 63,
        _ => rng.below(6),
    }
}

/// A random database: up to 6 relations spanning arity 1..=7, each
/// either empty, tiny, or duplicate-heavy. Deterministic per seed.
fn random_db(seed: u64) -> Database {
    let mut rng = Rng::new(seed);
    let mut db = Database::new();
    let relations = rng.below(7) as usize;
    for i in 0..relations {
        let name = format!("Rel{i}");
        let arity = 1 + rng.below(7) as usize;
        if rng.below(4) == 0 {
            // Explicitly empty relation: present in the schema (and the
            // snapshot TOC) with zero rows.
            db.insert_sorted_relation(&name, arity, Vec::new())
                .expect("fresh name");
            continue;
        }
        let rows = rng.below(40) as usize;
        for _ in 0..rows {
            let tuple: Vec<u64> = (0..arity).map(|_| random_value(&mut rng)).collect();
            // `insert` dedups, so collision-heavy draws exercise the
            // duplicate path for free.
            db.insert(&name, &tuple);
        }
    }
    db
}

#[test]
fn randomized_databases_round_trip_bit_identically() {
    for seed in 0..64u64 {
        let db = random_db(seed);
        let bytes = encode_snapshot(&db);
        let file =
            decode_snapshot(&bytes).unwrap_or_else(|e| panic!("seed {seed}: decode failed: {e}"));

        // Logical equality of the whole database.
        assert_eq!(file.db, db, "seed {seed}: database mismatch");
        assert_eq!(file.flags, 0, "seed {seed}: fresh snapshots carry no flags");

        // Stats persisted in the file equal a from-scratch stats pass —
        // the publish-time skip must be unobservable.
        assert_eq!(file.stats, db.stats(), "seed {seed}: stats mismatch");

        // Kernel-level bit identity: the FlatRelation buffer built from
        // the loaded tuples equals the one built from the originals.
        for (name, rel) in db.relations() {
            let vars: Vec<Var> = (0..rel.arity as u32).map(Var).collect();
            let original = FlatRelation::from_rows(vars.clone(), &rel.tuples);
            let loaded = file.db.relation(name).expect("relation survives");
            let reloaded = FlatRelation::from_rows(vars, &loaded.tuples);
            assert_eq!(
                original.data(),
                reloaded.data(),
                "seed {seed}: column buffer for `{name}` not bit-identical"
            );
        }

        // Encoding is deterministic: same database, same bytes.
        assert_eq!(
            encode_snapshot(&file.db),
            bytes,
            "seed {seed}: re-encode is not byte-identical"
        );

        // And the summary agrees with the database it describes.
        let summary = inspect_bytes(&bytes).expect("fresh snapshot inspects");
        assert_eq!(summary.relations.len(), db.relations().count());
        assert_eq!(summary.total_tuples as usize, db.size());
        assert_eq!(summary.file_len as usize, bytes.len());
    }
}

#[test]
fn round_trip_preserves_query_answers_differentially() {
    let shapes = [hyperchain(4, 2), hypercycle(5, 2)];
    for (i, h) in shapes.iter().enumerate() {
        let q = canonical_query(h);
        for seed in 0..8u64 {
            let db = planted_database(&q, 4, 6, seed);

            // Route A: binary snapshot round-trip.
            let snap = decode_snapshot(&encode_snapshot(&db)).expect("round trip");
            // Route B: text round-trip (the pre-store persistence path).
            let text = parse_database(&render_database(&db)).expect("text round trip");

            let expected_count = count_naive(&q, &db);
            assert_eq!(
                count_naive(&q, &snap.db),
                expected_count,
                "shape {i} seed {seed}: count differs after snapshot round-trip"
            );
            assert_eq!(
                count_naive(&q, &text),
                expected_count,
                "shape {i} seed {seed}: count differs after text round-trip"
            );

            let mut expected = enumerate_naive(&q, &db);
            expected.sort_unstable();
            let mut from_snap = enumerate_naive(&q, &snap.db);
            from_snap.sort_unstable();
            assert_eq!(
                from_snap, expected,
                "shape {i} seed {seed}: answers differ after snapshot round-trip"
            );
        }
    }
}

#[test]
fn file_round_trip_with_empty_and_extreme_databases() {
    let dir = std::env::temp_dir();
    let path = dir.join(format!("cqd2-roundtrip-{}.cqds", std::process::id()));
    let path = path.to_str().expect("temp path is UTF-8");

    // The empty database is a valid (header-only) snapshot.
    let empty = Database::new();
    write_snapshot(path, &empty).expect("write empty");
    let back = read_snapshot(path).expect("read empty");
    assert_eq!(back.db, empty);
    assert_eq!(back.stats, empty.stats());

    // A database of only-empty relations plus one extreme-valued row.
    let mut db = Database::new();
    db.insert_sorted_relation("Empty", 3, Vec::new())
        .expect("fresh");
    db.insert_sorted_relation("AlsoEmpty", 1, Vec::new())
        .expect("fresh");
    db.insert("Extreme", &[u64::MAX, 0, u64::MAX - 1, 1 << 63]);
    write_snapshot(path, &db).expect("write");
    let back = read_snapshot(path).expect("read");
    assert_eq!(back.db, db);
    assert_eq!(back.stats, db.stats());
    assert_eq!(
        back.db.relation("Extreme").expect("present").tuples,
        vec![vec![u64::MAX, 0, u64::MAX - 1, 1 << 63]]
    );

    std::fs::remove_file(path).ok();
}
